//! String transformations — the atoms of the noisy channel.
//!
//! §5.1: every transformation belongs to one of three templates:
//!
//! * *add characters* — `ε ↦ s` (insert `s` at a random position),
//! * *remove characters* — `s ↦ ε` (delete one occurrence of `s`),
//! * *exchange characters* — `s ↦ s'` (replace one occurrence).
//!
//! "If the transformation can be applied to multiple positions or
//! multiple substrings of `v*` one of those positions or strings is
//! selected uniformly at random."

use rand::Rng;
use std::fmt;

/// The three transformation templates of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Template {
    /// `ε ↦ s`: insert characters.
    Add,
    /// `s ↦ ε`: delete characters.
    Remove,
    /// `s ↦ s'`: replace characters.
    Exchange,
}

/// A concrete transformation `from ↦ to` (both sides may be any string;
/// at least one side is non-empty, and the sides differ).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transformation {
    /// The matched substring (`ε` for insertions).
    pub from: String,
    /// The replacement (`ε` for deletions).
    pub to: String,
}

impl Transformation {
    /// Construct; returns `None` for the identity (which the noisy
    /// channel never contains, §5.2 line 13).
    pub fn new(from: impl Into<String>, to: impl Into<String>) -> Option<Self> {
        let (from, to) = (from.into(), to.into());
        if from == to {
            return None;
        }
        Some(Transformation { from, to })
    }

    /// Which template this transformation instantiates.
    pub fn template(&self) -> Template {
        match (self.from.is_empty(), self.to.is_empty()) {
            (true, _) => Template::Add,
            (false, true) => Template::Remove,
            (false, false) => Template::Exchange,
        }
    }

    /// Whether this transformation can apply to `value` at all: `from`
    /// must be a substring of `value` (the empty string always is).
    pub fn applies_to(&self, value: &str) -> bool {
        value.contains(self.from.as_str())
    }

    /// All byte positions where the transformation can apply. For *add*,
    /// every char boundary (including both ends); otherwise every match
    /// of `from`.
    pub fn sites(&self, value: &str) -> Vec<usize> {
        if self.from.is_empty() {
            let mut sites: Vec<usize> = value.char_indices().map(|(i, _)| i).collect();
            sites.push(value.len());
            return sites;
        }
        let mut sites = Vec::new();
        let mut start = 0usize;
        while let Some(pos) = value[start..].find(self.from.as_str()) {
            sites.push(start + pos);
            // Overlapping matches advance one char, not one match length.
            let step = value[start + pos..]
                .chars()
                .next()
                .map_or(1, char::len_utf8);
            start += pos + step;
        }
        sites
    }

    /// Apply at a specific byte position from [`Transformation::sites`].
    pub fn apply_at(&self, value: &str, site: usize) -> String {
        let mut out = String::with_capacity(value.len() + self.to.len());
        out.push_str(&value[..site]);
        out.push_str(&self.to);
        out.push_str(&value[site + self.from.len()..]);
        out
    }

    /// Apply at a uniformly random site; `None` if the transformation
    /// does not apply to `value`.
    pub fn apply_random(&self, value: &str, rng: &mut impl Rng) -> Option<String> {
        let sites = self.sites(value);
        if sites.is_empty() {
            return None;
        }
        let site = sites[rng.random_range(0..sites.len())];
        Some(self.apply_at(value, site))
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |s: &str| {
            if s.is_empty() {
                "ε".to_owned()
            } else {
                format!("{s:?}")
            }
        };
        write!(f, "{} ↦ {}", show(&self.from), show(&self.to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_rejected() {
        assert!(Transformation::new("a", "a").is_none());
        assert!(Transformation::new("", "").is_none());
        assert!(Transformation::new("a", "b").is_some());
    }

    #[test]
    fn templates() {
        assert_eq!(
            Transformation::new("", "x").unwrap().template(),
            Template::Add
        );
        assert_eq!(
            Transformation::new("x", "").unwrap().template(),
            Template::Remove
        );
        assert_eq!(
            Transformation::new("x", "y").unwrap().template(),
            Template::Exchange
        );
    }

    #[test]
    fn add_sites_are_all_boundaries() {
        let t = Transformation::new("", "x").unwrap();
        assert_eq!(t.sites("abc"), vec![0, 1, 2, 3]);
        assert_eq!(t.sites(""), vec![0]);
    }

    #[test]
    fn exchange_sites_find_all_matches() {
        let t = Transformation::new("1", "x").unwrap();
        assert_eq!(t.sites("60612"), vec![3]);
        let t2 = Transformation::new("6", "x").unwrap();
        assert_eq!(t2.sites("60612"), vec![0, 2]);
    }

    #[test]
    fn overlapping_matches_found() {
        let t = Transformation::new("aa", "b").unwrap();
        assert_eq!(t.sites("aaa"), vec![0, 1]);
    }

    #[test]
    fn apply_at_paper_example() {
        // Insert "5" between '1' and '2' of "60612" → "606152".
        let t = Transformation::new("", "5").unwrap();
        assert_eq!(t.apply_at("60612", 4), "60615".to_owned() + "2");
        // Exchange "12" with "152".
        let t2 = Transformation::new("12", "152").unwrap();
        assert_eq!(t2.apply_at("60612", 3), "606152");
        // Exchange the whole string.
        let t3 = Transformation::new("60612", "606152").unwrap();
        assert_eq!(t3.apply_at("60612", 0), "606152");
    }

    #[test]
    fn remove_application() {
        let t = Transformation::new("x", "").unwrap();
        assert_eq!(t.apply_at("6x0612", 1), "60612");
    }

    #[test]
    fn apply_random_respects_applicability() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Transformation::new("z", "y").unwrap();
        assert_eq!(t.apply_random("abc", &mut rng), None);
        let t2 = Transformation::new("b", "x").unwrap();
        assert_eq!(t2.apply_random("abc", &mut rng), Some("axc".to_owned()));
    }

    #[test]
    fn applies_to_checks_substring() {
        let t = Transformation::new("ic", "x").unwrap();
        assert!(t.applies_to("chicago"));
        assert!(!t.applies_to("madison"));
        let add = Transformation::new("", "q").unwrap();
        assert!(add.applies_to(""));
        assert!(add.applies_to("anything"));
    }

    #[test]
    fn unicode_sites_are_char_boundaries() {
        let t = Transformation::new("", "x").unwrap();
        let s = "café";
        for site in t.sites(s) {
            // Applying at each site must not panic and must produce
            // valid UTF-8 (guaranteed by &str slicing).
            let out = t.apply_at(s, site);
            assert_eq!(out.chars().count(), s.chars().count() + 1);
        }
    }

    #[test]
    fn display_renders_epsilon() {
        let t = Transformation::new("", "x").unwrap();
        assert_eq!(t.to_string(), "ε ↦ \"x\"");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Applying a transformation at any reported site yields a string
        /// that differs from the input (non-identity guaranteed).
        #[test]
        fn application_changes_value(
            value in "[a-c]{0,8}",
            from in "[a-c]{0,2}",
            to in "[a-c]{0,2}",
        ) {
            prop_assume!(from != to);
            let t = Transformation::new(from, to).unwrap();
            for site in t.sites(&value) {
                let out = t.apply_at(&value, site);
                prop_assert_ne!(&out, &value);
            }
        }

        /// apply_random only returns None when no site exists.
        #[test]
        fn random_application_consistency(
            value in "[a-c]{0,8}",
            from in "[a-c]{1,2}",
        ) {
            let t = Transformation::new(from.clone(), "zz").unwrap();
            let mut rng = StdRng::seed_from_u64(0);
            let result = t.apply_random(&value, &mut rng);
            prop_assert_eq!(result.is_some(), value.contains(&from));
        }

        /// Remove followed by add at the same site restores the string.
        #[test]
        fn remove_is_inverse_of_insertion(value in "[a-d]{1,8}", pos_seed in 0usize..8) {
            let chars: Vec<char> = value.chars().collect();
            let pos = pos_seed % chars.len();
            let removed_char = chars[pos];
            let byte_pos: usize = value.char_indices().nth(pos).unwrap().0;
            let rm = Transformation::new(removed_char.to_string(), "").unwrap();
            prop_assume!(rm.sites(&value).contains(&byte_pos));
            let without = rm.apply_at(&value, byte_pos);
            let add = Transformation::new("", removed_char.to_string()).unwrap();
            let restored = add.apply_at(&without, byte_pos);
            prop_assert_eq!(restored, value);
        }
    }
}
