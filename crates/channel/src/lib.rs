//! # holo-channel
//!
//! The noisy-channel model `H = (Φ, Π)` of HoloDetect (§5), learned from
//! few examples and used for data augmentation.
//!
//! * [`transform`] — string transformations in the paper's three
//!   templates (*add*, *remove*, *exchange* characters), with
//!   position-uniform application,
//! * [`learn`] — **Algorithm 1**: hierarchical transformation learning
//!   via longest-common-substring splits,
//! * [`policy`] — **Algorithm 2** (empirical transformation distribution)
//!   and **Algorithm 3** (conditional policy `Π̂(v)`),
//! * [`repair`] — the unsupervised Naive-Bayes repair model `M_R`
//!   (§5.4) that harvests transformation examples from the dirty dataset
//!   itself (weak supervision),
//! * [`mod@augment`] — **Algorithm 4**: balanced example generation, plus
//!   the alternative strategies evaluated in Table 4 (random
//!   transformations; learned transformations without a policy) and the
//!   forced-ratio mode of Figure 6.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod augment;
pub mod learn;
pub mod policy;
pub mod repair;
pub mod transform;

pub use augment::{augment, augment_to_ratio, AugmentConfig, AugmentStrategy};
pub use learn::learn_transformations;
pub use policy::Policy;
pub use repair::{NaiveBayesRepair, RepairConfig};
pub use transform::{Template, Transformation};
