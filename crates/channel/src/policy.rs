//! Algorithms 2 and 3 — the augmentation policy `Π̂`.
//!
//! Algorithm 2 builds the empirical distribution over transformations
//! from the lists produced by Algorithm 1 (counting duplicate
//! occurrences). Algorithm 3 conditions on an input string `v`: keep only
//! transformations whose `from` side is a substring of `v`, and
//! renormalize.

use crate::transform::Transformation;
use rand::Rng;
use std::collections::HashMap;

/// The empirical policy `Π̂`: a distribution over learned transformations.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Unique transformations with empirical probabilities, sorted by
    /// descending probability (then lexicographically, for determinism).
    entries: Vec<(Transformation, f64)>,
    index: HashMap<Transformation, usize>,
}

impl Policy {
    /// **Algorithm 2**: build from the transformation lists `{Φ_e}`.
    pub fn from_lists(lists: &[Vec<Transformation>]) -> Self {
        let mut counts: HashMap<&Transformation, u64> = HashMap::new();
        let mut total = 0u64;
        for list in lists {
            for t in list {
                *counts.entry(t).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut entries: Vec<(Transformation, f64)> = counts
            .into_iter()
            .map(|(t, c)| (t.clone(), c as f64 / total.max(1) as f64))
            .collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (t.clone(), i))
            .collect();
        Policy { entries, index }
    }

    /// **Algorithms 1 + 2** fused: learn each `(clean, dirty)` pair's
    /// transformation list and build the empirical policy from them —
    /// the one-call path shared by initial fit and drift adaptation.
    pub fn from_pairs<S: AsRef<str>>(pairs: &[(S, S)]) -> Self {
        let lists: Vec<Vec<Transformation>> = pairs
            .iter()
            .map(|(clean, dirty)| {
                crate::learn::learn_transformations(clean.as_ref(), dirty.as_ref())
            })
            .collect();
        Policy::from_lists(&lists)
    }

    /// Number of distinct transformations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no transformations were learned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The unconditional empirical probability `Π̂(ϕ)`.
    pub fn prob(&self, t: &Transformation) -> f64 {
        self.index.get(t).map_or(0.0, |&i| self.entries[i].1)
    }

    /// All transformations with probabilities, most probable first.
    pub fn entries(&self) -> &[(Transformation, f64)] {
        &self.entries
    }

    /// **Algorithm 3**: the conditional distribution `Π̂(v) = P(Φ_v | v)`
    /// over transformations applicable to `v`, renormalized. Empty when
    /// nothing applies.
    pub fn conditional(&self, v: &str) -> Vec<(Transformation, f64)> {
        let mut applicable: Vec<(Transformation, f64)> = self
            .entries
            .iter()
            .filter(|(t, _)| t.applies_to(v))
            .cloned()
            .collect();
        let mass: f64 = applicable.iter().map(|(_, p)| p).sum();
        if mass <= 0.0 {
            return Vec::new();
        }
        for (_, p) in &mut applicable {
            *p /= mass;
        }
        applicable
    }

    /// Sample `ϕ ~ Π̂(v)`; `None` when no transformation applies.
    pub fn sample(&self, v: &str, rng: &mut impl Rng) -> Option<Transformation> {
        let cond = self.conditional(v);
        if cond.is_empty() {
            return None;
        }
        let r: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for (t, p) in &cond {
            acc += p;
            if r < acc {
                return Some(t.clone());
            }
        }
        Some(cond.last().expect("non-empty conditional").0.clone())
    }

    /// Sample uniformly over the transformations applicable to `v`,
    /// *ignoring* the learned probabilities — the "AUG w/o Policy"
    /// strategy of Table 4 (§6.6).
    pub fn sample_uniform(&self, v: &str, rng: &mut impl Rng) -> Option<Transformation> {
        let applicable: Vec<&Transformation> = self
            .entries
            .iter()
            .map(|(t, _)| t)
            .filter(|t| t.applies_to(v))
            .collect();
        if applicable.is_empty() {
            return None;
        }
        Some(applicable[rng.random_range(0..applicable.len())].clone())
    }

    /// The `k` most probable conditional transformations for `v` —
    /// Figure 8's "top-10 entries in the conditional distribution".
    pub fn top_k(&self, v: &str, k: usize) -> Vec<(Transformation, f64)> {
        let mut cond = self.conditional(v);
        cond.truncate(k);
        cond
    }

    /// Temperature-scaled conditional: probabilities are raised to
    /// `1/temperature` and renormalized. `T < 1` sharpens towards the
    /// most frequent transformations, `T > 1` flattens towards uniform
    /// (`T → ∞` recovers the Table 4 "AUG w/o Policy" behaviour, `T → 0`
    /// a deterministic argmax channel). An extension knob beyond the
    /// paper — see the `ablation_temperature` experiment.
    pub fn conditional_with_temperature(
        &self,
        v: &str,
        temperature: f64,
    ) -> Vec<(Transformation, f64)> {
        assert!(temperature > 0.0, "temperature must be positive");
        let mut cond = self.conditional(v);
        if cond.is_empty() {
            return cond;
        }
        let inv_t = 1.0 / temperature;
        for (_, p) in &mut cond {
            *p = p.powf(inv_t);
        }
        let mass: f64 = cond.iter().map(|(_, p)| p).sum();
        for (_, p) in &mut cond {
            *p /= mass;
        }
        cond.sort_by(|a, b| b.1.total_cmp(&a.1));
        cond
    }

    /// Sample from the temperature-scaled conditional distribution.
    pub fn sample_with_temperature(
        &self,
        v: &str,
        temperature: f64,
        rng: &mut impl Rng,
    ) -> Option<Transformation> {
        let cond = self.conditional_with_temperature(v, temperature);
        if cond.is_empty() {
            return None;
        }
        let r: f64 = rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for (t, p) in &cond {
            acc += p;
            if r < acc {
                return Some(t.clone());
            }
        }
        Some(cond.last().expect("non-empty conditional").0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_transformations;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(from: &str, to: &str) -> Transformation {
        Transformation::new(from, to).unwrap()
    }

    fn toy_policy() -> Policy {
        Policy::from_lists(&[
            vec![t("", "x"), t("2", "x2")],
            vec![t("", "x"), t("a", "b")],
        ])
    }

    #[test]
    fn empirical_probabilities_sum_to_one() {
        let p = toy_policy();
        let total: f64 = p.entries().iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn counts_duplicates_across_lists() {
        let p = toy_policy();
        assert!((p.prob(&t("", "x")) - 0.5).abs() < 1e-12);
        assert!((p.prob(&t("2", "x2")) - 0.25).abs() < 1e-12);
        assert_eq!(p.prob(&t("q", "r")), 0.0);
    }

    #[test]
    fn entries_sorted_by_probability() {
        let p = toy_policy();
        assert_eq!(p.entries()[0].0, t("", "x"));
    }

    #[test]
    fn conditional_filters_and_renormalizes() {
        let p = toy_policy();
        // "60612" contains "" and "2" but not "a".
        let cond = p.conditional("60612");
        assert_eq!(cond.len(), 2);
        let total: f64 = cond.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // ε↦x had 0.5, 2↦x2 had 0.25 → renormalized 2/3 and 1/3.
        assert!((cond[0].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_empty_when_nothing_applies() {
        let p = Policy::from_lists(&[vec![t("zz", "y")]]);
        assert!(p.conditional("abc").is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.sample("abc", &mut rng).is_none());
    }

    #[test]
    fn sampling_follows_distribution() {
        let p = toy_policy();
        let mut rng = StdRng::seed_from_u64(42);
        let mut adds = 0;
        let n = 3000;
        for _ in 0..n {
            let s = p.sample("60612", &mut rng).unwrap();
            if s == t("", "x") {
                adds += 1;
            }
        }
        let frac = adds as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn uniform_sampling_ignores_weights() {
        let p = toy_policy();
        let mut rng = StdRng::seed_from_u64(7);
        let mut adds = 0;
        let n = 3000;
        for _ in 0..n {
            if p.sample_uniform("60612", &mut rng).unwrap() == t("", "x") {
                adds += 1;
            }
        }
        let frac = adds as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn top_k_truncates() {
        let p = toy_policy();
        assert_eq!(p.top_k("60612", 1).len(), 1);
        assert_eq!(p.top_k("60612", 10).len(), 2);
    }

    #[test]
    fn temperature_one_matches_plain_conditional() {
        let p = toy_policy();
        let plain = p.conditional("60612");
        let scaled = p.conditional_with_temperature("60612", 1.0);
        for ((t1, p1), (t2, p2)) in plain.iter().zip(&scaled) {
            assert_eq!(t1, t2);
            assert!((p1 - p2).abs() < 1e-12);
        }
    }

    #[test]
    fn low_temperature_sharpens_high_flattens() {
        let p = toy_policy();
        let sharp = p.conditional_with_temperature("60612", 0.25);
        let flat = p.conditional_with_temperature("60612", 10.0);
        // Top entry gains mass when sharpened, loses when flattened.
        let plain_top = p.conditional("60612")[0].1;
        assert!(sharp[0].1 > plain_top);
        assert!(flat[0].1 < plain_top);
        // Both remain distributions.
        for cond in [&sharp, &flat] {
            let total: f64 = cond.iter().map(|(_, q)| q).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn temperature_sampling_respects_applicability() {
        let p = toy_policy();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = p.sample_with_temperature("60612", 2.0, &mut rng).unwrap();
            assert!(t.applies_to("60612"));
        }
        // A policy with no applicable transformations samples nothing.
        let narrow = Policy::from_lists(&[vec![t("zz", "y")]]);
        assert!(narrow
            .sample_with_temperature("abc", 2.0, &mut rng)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        toy_policy().conditional_with_temperature("x", 0.0);
    }

    #[test]
    fn end_to_end_with_learning() {
        // Learn from x-typos (the Hospital error channel) and check the
        // policy concentrates on x-insertions/exchanges.
        let lists: Vec<Vec<Transformation>> = [
            ("scip-inf-4", "scip-inf-x4"),
            ("alabama", "alaxbama"),
            ("surgery", "surxgery"),
        ]
        .iter()
        .map(|(c, e)| learn_transformations(c, e))
        .collect();
        let p = Policy::from_lists(&lists);
        let add_x = t("", "x");
        assert!(p.prob(&add_x) > 0.2, "ε↦x prob = {}", p.prob(&add_x));
        // ε↦x applies everywhere and should dominate any conditional.
        let cond = p.conditional("anything");
        assert_eq!(cond[0].0, add_x);
    }

    #[test]
    fn from_pairs_fuses_learning_and_counting() {
        let pairs = vec![
            ("chicago".to_owned(), "chixcago".to_owned()),
            ("madison".to_owned(), "madixson".to_owned()),
        ];
        let p = Policy::from_pairs(&pairs);
        assert!(!p.is_empty());
        assert!(p.prob(&t("", "x")) > 0.0, "x-insertions must be learned");
        // Equal pairs contribute empty lists, not phantom mass.
        let with_noop = vec![("same".to_owned(), "same".to_owned())];
        assert!(Policy::from_pairs(&with_noop).is_empty());
    }

    #[test]
    fn empty_policy() {
        let p = Policy::from_lists(&[]);
        assert!(p.is_empty());
        assert!(p.conditional("abc").is_empty());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conditional distributions always sum to 1 (when non-empty) and
        /// only contain applicable transformations.
        #[test]
        fn conditional_is_distribution(
            pairs in proptest::collection::vec(("[a-c]{1,4}", "[a-c]{1,4}"), 1..8),
            v in "[a-c]{0,6}",
        ) {
            let lists: Vec<Vec<Transformation>> = pairs
                .iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| crate::learn::learn_transformations(a, b))
                .collect();
            let p = Policy::from_lists(&lists);
            let cond = p.conditional(&v);
            if !cond.is_empty() {
                let total: f64 = cond.iter().map(|(_, q)| q).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
            for (t, q) in &cond {
                prop_assert!(t.applies_to(&v));
                prop_assert!(*q > 0.0);
            }
        }
    }
}
