//! The unsupervised Naive-Bayes repair model `M_R` (§5.4).
//!
//! "We iterate over each cell in D, pretend that its value is missing and
//! leverage the values of other attributes in the tuple to form a Naive
//! Bayes model that we use to impute the value of the cell... To ensure
//! high precision, we only accept repairs with a likelihood more than
//! 90%." Accepted repairs `(v̂, v)` become weak-supervision examples for
//! transformation learning when `T` contains too few real errors.
//!
//! Scoring: for a cell of attribute `A` with tuple context
//! `u = (v_{A'})_{A' ≠ A}`,
//! `score(v) = log P(v) + Σ_{A'} log P(v_{A'} | v)` with Laplace
//! smoothing; the posterior is the softmax over the candidate set.
//! Candidates are the values of column `A` that co-occur with at least
//! one context value (plus the observed value itself), capped at
//! [`RepairConfig::max_candidates`] by co-occurrence support.

use holo_data::{CellId, Dataset, Symbol};
use std::collections::HashMap;

/// Configuration for [`NaiveBayesRepair`].
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Minimum posterior for accepting a repair (paper: 0.9).
    pub acceptance_threshold: f64,
    /// Laplace smoothing constant.
    pub smoothing: f64,
    /// Cap on scored candidates per cell.
    pub max_candidates: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            acceptance_threshold: 0.9,
            smoothing: 1.0,
            max_candidates: 64,
        }
    }
}

/// A fitted Naive-Bayes repair model over one dataset.
#[derive(Debug)]
pub struct NaiveBayesRepair {
    cfg: RepairConfig,
    /// `value_counts[a][sym]` — occurrences of each value in column `a`.
    value_counts: Vec<HashMap<Symbol, u32>>,
    /// `cooc[a][a2][ctx_sym]` — for target column `a` and context column
    /// `a2`, the target values co-occurring with `ctx_sym` and counts.
    cooc: Vec<Vec<HashMap<Symbol, HashMap<Symbol, u32>>>>,
    n_tuples: usize,
}

/// One accepted repair suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// The repaired cell.
    pub cell: CellId,
    /// The observed (presumed dirty) value.
    pub observed: String,
    /// The suggested value `v̂`.
    pub suggested: String,
    /// Posterior probability of the suggestion.
    pub confidence: f64,
}

impl NaiveBayesRepair {
    /// Fit the co-occurrence statistics over `d`.
    pub fn build(d: &Dataset, cfg: RepairConfig) -> Self {
        let na = d.n_attrs();
        let n = d.n_tuples();
        let mut value_counts: Vec<HashMap<Symbol, u32>> = vec![HashMap::new(); na];
        let mut cooc: Vec<Vec<HashMap<Symbol, HashMap<Symbol, u32>>>> =
            (0..na).map(|_| vec![HashMap::new(); na]).collect();
        for t in 0..n {
            for a in 0..na {
                let v = d.symbol(t, a);
                *value_counts[a].entry(v).or_insert(0) += 1;
                for (a2, cmap) in cooc[a].iter_mut().enumerate() {
                    if a2 == a {
                        continue;
                    }
                    let u = d.symbol(t, a2);
                    *cmap.entry(u).or_default().entry(v).or_insert(0) += 1;
                }
            }
        }
        NaiveBayesRepair {
            cfg,
            value_counts,
            cooc,
            n_tuples: n,
        }
    }

    /// Impute cell `(t, a)`: the best candidate with its posterior, even
    /// if it matches the observed value. `None` when the dataset has a
    /// single attribute (no context to condition on).
    pub fn impute(&self, d: &Dataset, t: usize, a: usize) -> Option<(String, f64)> {
        let na = d.n_attrs();
        if na < 2 || self.n_tuples == 0 {
            return None;
        }
        let observed = d.symbol(t, a);

        // Gather candidates by co-occurrence support with the context.
        let mut support: HashMap<Symbol, u64> = HashMap::new();
        for a2 in 0..na {
            if a2 == a {
                continue;
            }
            let u = d.symbol(t, a2);
            if let Some(cands) = self.cooc[a][a2].get(&u) {
                for (&v, &c) in cands {
                    *support.entry(v).or_insert(0) += u64::from(c);
                }
            }
        }
        support.entry(observed).or_insert(0);
        let mut candidates: Vec<(Symbol, u64)> = support.into_iter().collect();
        candidates.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
        candidates.truncate(self.cfg.max_candidates);

        // Score candidates in log space.
        let eps = self.cfg.smoothing;
        let mut scores: Vec<f64> = Vec::with_capacity(candidates.len());
        for &(v, _) in &candidates {
            let cv = f64::from(self.value_counts[a].get(&v).copied().unwrap_or(0));
            let mut s = ((cv + eps) / (self.n_tuples as f64 + eps)).ln();
            for a2 in 0..na {
                if a2 == a {
                    continue;
                }
                let u = d.symbol(t, a2);
                let joint = self.cooc[a][a2]
                    .get(&u)
                    .and_then(|m| m.get(&v))
                    .copied()
                    .unwrap_or(0);
                let distinct = self.value_counts[a2].len() as f64;
                s += ((f64::from(joint) + eps) / (cv + eps * distinct)).ln();
            }
            scores.push(s);
        }

        // Softmax posterior.
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        let (best_i, _) = exps
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .expect("non-empty candidates");
        let posterior = exps[best_i] / total;
        Some((d.pool().resolve(candidates[best_i].0).to_owned(), posterior))
    }

    /// The accepted repair for cell `(t, a)`, if the posterior clears the
    /// threshold and the suggestion differs from the observed value.
    pub fn suggest(&self, d: &Dataset, t: usize, a: usize) -> Option<Repair> {
        let (suggested, confidence) = self.impute(d, t, a)?;
        let observed = d.value(t, a);
        if suggested == observed || confidence < self.cfg.acceptance_threshold {
            return None;
        }
        Some(Repair {
            cell: CellId::new(t, a),
            observed: observed.to_owned(),
            suggested,
            confidence,
        })
    }

    /// All accepted repairs over the dataset.
    pub fn repairs(&self, d: &Dataset) -> Vec<Repair> {
        let mut out = Vec::new();
        for t in 0..d.n_tuples() {
            for a in 0..d.n_attrs() {
                if let Some(r) = self.suggest(d, t, a) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// Weak-supervision transformation examples `(v̂, v)` from accepted
    /// repairs: the suggestion plays the role of the clean value (§5.4).
    pub fn harvest_examples(&self, d: &Dataset) -> Vec<(String, String)> {
        self.repairs(d)
            .into_iter()
            .map(|r| (r.suggested, r.observed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_data::{DatasetBuilder, Schema};

    /// Zip→City data where one City cell is a typo. The co-occurrence
    /// evidence (many clean rows) should repair it with high confidence.
    fn dirty_dataset() -> Dataset {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City", "State"]));
        for _ in 0..30 {
            b.push_row(&["60612", "Chicago", "IL"]);
            b.push_row(&["53703", "Madison", "WI"]);
        }
        b.push_row(&["60612", "Cicago", "IL"]); // typo row 60
        b.build()
    }

    #[test]
    fn repairs_the_typo() {
        let d = dirty_dataset();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        let r = nb.suggest(&d, 60, 1).expect("typo should be repaired");
        assert_eq!(r.suggested, "Chicago");
        assert_eq!(r.observed, "Cicago");
        assert!(r.confidence >= 0.9);
    }

    #[test]
    fn leaves_clean_cells_alone() {
        let d = dirty_dataset();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        assert!(nb.suggest(&d, 0, 1).is_none());
        assert!(nb.suggest(&d, 1, 0).is_none());
    }

    #[test]
    fn all_repairs_has_high_precision_here() {
        let d = dirty_dataset();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        let rs = nb.repairs(&d);
        assert_eq!(rs.len(), 1, "only the typo cell should be repaired: {rs:?}");
        assert_eq!(rs[0].cell, CellId::new(60, 1));
    }

    #[test]
    fn harvest_orients_suggestion_first() {
        let d = dirty_dataset();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        let ex = nb.harvest_examples(&d);
        assert_eq!(ex, vec![("Chicago".to_owned(), "Cicago".to_owned())]);
    }

    #[test]
    fn impute_returns_posterior_for_clean_cells_too() {
        let d = dirty_dataset();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        let (v, p) = nb.impute(&d, 0, 1).unwrap();
        assert_eq!(v, "Chicago");
        assert!(p > 0.9);
    }

    #[test]
    fn single_attribute_dataset_suggests_nothing() {
        let mut b = DatasetBuilder::new(Schema::new(["A"]));
        b.push_row(&["x"]);
        b.push_row(&["y"]);
        let d = b.build();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        assert!(nb.impute(&d, 0, 0).is_none());
        assert!(nb.repairs(&d).is_empty());
    }

    #[test]
    fn empty_dataset_is_safe() {
        let d = DatasetBuilder::new(Schema::new(["A", "B"])).build();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        assert!(nb.repairs(&d).is_empty());
    }

    #[test]
    fn threshold_gates_acceptance() {
        // With two equally plausible cities for one zip, confidence
        // splits and no repair should clear a 0.9 threshold.
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..10 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["60612", "Cicero"]);
        }
        b.push_row(&["60612", "Berwyn"]);
        let d = b.build();
        let nb = NaiveBayesRepair::build(&d, RepairConfig::default());
        assert!(nb.suggest(&d, 20, 1).is_none());
        // Lowering the threshold lets the repair through.
        let nb2 = NaiveBayesRepair::build(
            &d,
            RepairConfig {
                acceptance_threshold: 0.3,
                ..RepairConfig::default()
            },
        );
        assert!(nb2.suggest(&d, 20, 1).is_some());
    }

    #[test]
    fn candidate_cap_respected() {
        let mut b = DatasetBuilder::new(Schema::new(["K", "V"]));
        for i in 0..100 {
            b.push_row(&["k".to_owned(), format!("v{i}")]);
        }
        let d = b.build();
        let nb = NaiveBayesRepair::build(
            &d,
            RepairConfig {
                max_candidates: 8,
                ..RepairConfig::default()
            },
        );
        // No panic, and imputation still returns something sensible.
        assert!(nb.impute(&d, 0, 1).is_some());
    }
}
