//! Algorithm 4 — data augmentation, plus the Table 4 ablation strategies.
//!
//! Given the correct examples of `T`, the learned transformations `Φ`
//! and policy `Π̂`, generate synthetic error pairs `(v, v′)` until the
//! training classes balance. The acceptance coin `α` is the paper's
//! hyper-parameter; [`augment_to_ratio`] instead forces a target
//! error/correct ratio (the Figure 6 sweep, which "manually sets the
//! ratio between positive and negative examples").

use crate::policy::Policy;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which augmentation strategy to use (Table 4, §6.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugmentStrategy {
    /// Learned transformations weighted by the learned policy (AUG).
    Learned,
    /// Learned transformations, applicable set sampled uniformly
    /// (AUG w/o Policy).
    NoPolicy,
    /// Completely random transformations not informed by the data
    /// (Rand. Trans.): random character insert/delete/replace, or a swap
    /// to a random alternative value.
    Random,
}

/// Configuration for [`augment`].
#[derive(Debug, Clone)]
pub struct AugmentConfig {
    /// Acceptance probability `α` (Algorithm 4 line 8).
    pub alpha: f64,
    /// Policy temperature: 1.0 is the paper's learned policy; higher
    /// flattens towards uniform, lower sharpens (extension knob, see
    /// `ablation_temperature`).
    pub temperature: f64,
    /// Strategy (Table 4). Default: [`AugmentStrategy::Learned`].
    pub strategy: AugmentStrategy,
    /// RNG seed.
    pub seed: u64,
    /// Safety valve: give up after this many sampling attempts per
    /// requested example (the paper's loop assumes the policy always
    /// fires eventually; real data may have cells no transformation
    /// applies to).
    pub max_attempt_factor: usize,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            alpha: 0.7,
            temperature: 1.0,
            strategy: AugmentStrategy::Learned,
            seed: 13,
            max_attempt_factor: 50,
        }
    }
}

/// A generated augmentation example: the source correct value and the
/// transformed (synthetic-error) value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentedExample {
    /// Index into the `correct` slice passed to [`augment`] — callers
    /// map it back to the cell whose context the synthetic error lives in.
    pub source: usize,
    /// The correct value `v`.
    pub clean: String,
    /// The transformed value `v′ = ϕ(v)`, guaranteed `≠ clean`.
    pub dirty: String,
}

/// **Algorithm 4**: generate `p − n` synthetic error examples (or stop at
/// the attempt cap) where `p`/`n` are the correct/error counts in `T`.
///
/// `correct` holds the correct example values; `n_errors` is the number
/// of true error examples already in `T`. `swap_pool` supplies
/// alternative values for the [`AugmentStrategy::Random`] value-swap move
/// (ignored by the other strategies).
pub fn augment(
    correct: &[String],
    n_errors: usize,
    policy: &Policy,
    swap_pool: &[String],
    cfg: &AugmentConfig,
) -> Vec<AugmentedExample> {
    let p = correct.len();
    let target = p.saturating_sub(n_errors);
    augment_n(correct, target, policy, swap_pool, cfg)
}

/// Figure 6 variant: generate exactly as many synthetic errors as needed
/// for errors to make up `ratio` of the final training data
/// (`errors / (errors + correct)`), bypassing `α`.
pub fn augment_to_ratio(
    correct: &[String],
    n_errors: usize,
    ratio: f64,
    policy: &Policy,
    swap_pool: &[String],
    cfg: &AugmentConfig,
) -> Vec<AugmentedExample> {
    assert!((0.0..1.0).contains(&ratio), "ratio must be in [0,1)");
    let p = correct.len() as f64;
    // errors + synth = ratio * (p + errors + synth)
    let total_errors = (ratio * p / (1.0 - ratio)).round() as usize;
    let target = total_errors.saturating_sub(n_errors);
    let mut forced = cfg.clone();
    forced.alpha = 1.0; // ratio mode replaces the acceptance coin
    augment_n(correct, target, policy, swap_pool, &forced)
}

fn augment_n(
    correct: &[String],
    target: usize,
    policy: &Policy,
    swap_pool: &[String],
    cfg: &AugmentConfig,
) -> Vec<AugmentedExample> {
    let mut out = Vec::with_capacity(target);
    if correct.is_empty() || target == 0 {
        return out;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let max_attempts = target.saturating_mul(cfg.max_attempt_factor).max(1000);
    let mut attempts = 0usize;
    while out.len() < target && attempts < max_attempts {
        attempts += 1;
        // Line 7: draw a correct example uniformly.
        let source = rng.random_range(0..correct.len());
        let v = &correct[source];
        // Line 8: the acceptance coin.
        if rng.random_range(0.0..1.0) >= cfg.alpha {
            continue;
        }
        let dirty = match cfg.strategy {
            AugmentStrategy::Learned => policy
                .sample_with_temperature(v, cfg.temperature, &mut rng)
                .and_then(|t| t.apply_random(v, &mut rng)),
            AugmentStrategy::NoPolicy => policy
                .sample_uniform(v, &mut rng)
                .and_then(|t| t.apply_random(v, &mut rng)),
            AugmentStrategy::Random => random_transform(v, swap_pool, &mut rng),
        };
        let Some(dirty) = dirty else { continue };
        if dirty == *v {
            continue;
        }
        out.push(AugmentedExample {
            source,
            clean: v.clone(),
            dirty,
        });
    }
    out
}

/// A data-agnostic random error: typo (insert/delete/replace a random
/// ASCII character) or swap to a random other value from the pool.
fn random_transform(v: &str, swap_pool: &[String], rng: &mut StdRng) -> Option<String> {
    let chars: Vec<char> = v.chars().collect();
    let move_kind = rng.random_range(0..4u8);
    match move_kind {
        // insert
        0 => {
            let pos = rng.random_range(0..=chars.len());
            let c = random_ascii(rng);
            let mut out: String = chars[..pos].iter().collect();
            out.push(c);
            out.extend(&chars[pos..]);
            Some(out)
        }
        // delete
        1 if !chars.is_empty() => {
            let pos = rng.random_range(0..chars.len());
            let mut out = String::with_capacity(v.len());
            for (i, &c) in chars.iter().enumerate() {
                if i != pos {
                    out.push(c);
                }
            }
            Some(out)
        }
        // replace
        2 if !chars.is_empty() => {
            let pos = rng.random_range(0..chars.len());
            let mut out = String::with_capacity(v.len());
            for (i, &c) in chars.iter().enumerate() {
                out.push(if i == pos { random_ascii(rng) } else { c });
            }
            Some(out)
        }
        // value swap
        _ if !swap_pool.is_empty() => {
            let alt = &swap_pool[rng.random_range(0..swap_pool.len())];
            if alt == v {
                None
            } else {
                Some(alt.clone())
            }
        }
        _ => None,
    }
}

fn random_ascii(rng: &mut StdRng) -> char {
    let c = rng.random_range(b'a'..=b'z');
    c as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_transformations;
    use crate::transform::Transformation;

    fn x_typo_policy() -> Policy {
        let lists: Vec<Vec<Transformation>> = [
            ("scip-inf-4", "scip-inf-x4"),
            ("alabama", "alaxbama"),
            ("surgery", "surxgery"),
        ]
        .iter()
        .map(|(c, e)| learn_transformations(c, e))
        .collect();
        Policy::from_lists(&lists)
    }

    fn corrects() -> Vec<String> {
        vec![
            "chicago".into(),
            "madison".into(),
            "60612".into(),
            "evp coffee".into(),
        ]
    }

    #[test]
    fn balances_classes() {
        let policy = x_typo_policy();
        let out = augment(&corrects(), 1, &policy, &[], &AugmentConfig::default());
        // p = 4, n = 1 → 3 synthetic errors requested.
        assert_eq!(out.len(), 3);
        for ex in &out {
            assert_ne!(ex.clean, ex.dirty);
            assert_eq!(corrects()[ex.source], ex.clean);
        }
    }

    #[test]
    fn learned_strategy_produces_channel_like_errors() {
        let policy = x_typo_policy();
        let cfg = AugmentConfig {
            alpha: 1.0,
            ..Default::default()
        };
        let out = augment(&corrects(), 0, &policy, &[], &cfg);
        // The x-typo channel inserts 'x' characters; every synthetic
        // error should contain an x the clean value lacked (or come from
        // a longer learned exchange that embeds one).
        let with_x = out
            .iter()
            .filter(|e| e.dirty.matches('x').count() > e.clean.matches('x').count())
            .count();
        assert!(with_x * 2 >= out.len(), "{out:?}");
    }

    #[test]
    fn already_balanced_adds_nothing() {
        let policy = x_typo_policy();
        let out = augment(&corrects(), 4, &policy, &[], &AugmentConfig::default());
        assert!(out.is_empty());
    }

    #[test]
    fn empty_policy_terminates() {
        let policy = Policy::from_lists(&[]);
        let cfg = AugmentConfig {
            max_attempt_factor: 10,
            ..Default::default()
        };
        let out = augment(&corrects(), 0, &policy, &[], &cfg);
        assert!(out.is_empty());
    }

    #[test]
    fn ratio_mode_hits_target() {
        let policy = x_typo_policy();
        let correct: Vec<String> = (0..40).map(|i| format!("value{i}")).collect();
        for ratio in [0.1f64, 0.3, 0.5] {
            let out = augment_to_ratio(&correct, 0, ratio, &policy, &[], &AugmentConfig::default());
            let achieved = out.len() as f64 / (out.len() + correct.len()) as f64;
            assert!(
                (achieved - ratio).abs() < 0.05,
                "ratio {ratio}: got {achieved} ({} synth)",
                out.len()
            );
        }
    }

    #[test]
    fn random_strategy_generates_errors_without_policy() {
        let policy = Policy::from_lists(&[]);
        let cfg = AugmentConfig {
            strategy: AugmentStrategy::Random,
            alpha: 1.0,
            ..Default::default()
        };
        let pool = vec!["other".to_owned()];
        let out = augment(&corrects(), 0, &policy, &pool, &cfg);
        assert_eq!(out.len(), 4);
        for e in &out {
            assert_ne!(e.clean, e.dirty);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let policy = x_typo_policy();
        let a = augment(&corrects(), 0, &policy, &[], &AugmentConfig::default());
        let b = augment(&corrects(), 0, &policy, &[], &AugmentConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn no_correct_examples_is_safe() {
        let policy = x_typo_policy();
        assert!(augment(&[], 0, &policy, &[], &AugmentConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "ratio must be")]
    fn ratio_one_rejected() {
        let policy = Policy::from_lists(&[]);
        augment_to_ratio(&[], 0, 1.0, &policy, &[], &AugmentConfig::default());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::learn::learn_transformations;
    use proptest::prelude::*;

    proptest! {
        /// Synthetic errors always differ from their source and reference
        /// a valid source index.
        #[test]
        fn examples_wellformed(
            corrects in proptest::collection::vec("[a-d]{1,6}", 1..8),
            seed in 0u64..50,
        ) {
            let lists = vec![
                learn_transformations("abcd", "abxcd"),
                learn_transformations("dcba", "dcb"),
            ];
            let policy = Policy::from_lists(&lists);
            let cfg = AugmentConfig { seed, alpha: 0.9, ..Default::default() };
            for ex in augment(&corrects, 0, &policy, &[], &cfg) {
                prop_assert!(ex.source < corrects.len());
                prop_assert_eq!(&ex.clean, &corrects[ex.source]);
                prop_assert_ne!(&ex.clean, &ex.dirty);
            }
        }
    }
}
