//! Longest common substring, the splitting step of Algorithm 1.
//!
//! The transformation learner recursively splits an example pair
//! `(v*, v)` around their longest common substring. This module provides
//! the classic `O(|a|·|b|)` dynamic program, reporting the match position
//! in both strings so the caller can carve out prefixes and suffixes.

/// A longest-common-substring match between two strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcsMatch {
    /// Start offset (in `char`s) of the match within the first string.
    pub start_a: usize,
    /// Start offset (in `char`s) of the match within the second string.
    pub start_b: usize,
    /// Length of the match in `char`s. Zero when the strings share nothing.
    pub len: usize,
}

/// Find the longest common substring of `a` and `b`.
///
/// Offsets are measured in `char`s, not bytes, so callers slicing UTF-8
/// data should convert via `char_indices` (or work on `Vec<char>`).
/// Ties are broken towards the earliest match in `a`, then in `b`, which
/// keeps Algorithm 1 deterministic.
pub fn longest_common_substring(a: &str, b: &str) -> LcsMatch {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    lcs_chars(&ac, &bc)
}

/// Character-slice variant of [`longest_common_substring`], useful when the
/// caller already holds decoded `char` buffers (Algorithm 1's recursion).
pub fn lcs_chars(a: &[char], b: &[char]) -> LcsMatch {
    if a.is_empty() || b.is_empty() {
        return LcsMatch {
            start_a: 0,
            start_b: 0,
            len: 0,
        };
    }
    // Rolling 1-D DP: prev[j] = length of common suffix of a[..i] and b[..j].
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = LcsMatch {
        start_a: 0,
        start_b: 0,
        len: 0,
    };
    for (i, &ca) in a.iter().enumerate() {
        for (j, &cb) in b.iter().enumerate() {
            if ca == cb {
                let l = prev[j] + 1;
                cur[j + 1] = l;
                if l > best.len {
                    best = LcsMatch {
                        start_a: i + 1 - l,
                        start_b: j + 1 - l,
                        len: l,
                    };
                }
            } else {
                cur[j + 1] = 0;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(0);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcs_str(a: &str, b: &str) -> String {
        let m = longest_common_substring(a, b);
        a.chars().skip(m.start_a).take(m.len).collect()
    }

    #[test]
    fn identical_strings() {
        let m = longest_common_substring("60612", "60612");
        assert_eq!(
            m,
            LcsMatch {
                start_a: 0,
                start_b: 0,
                len: 5
            }
        );
    }

    #[test]
    fn typo_pair_from_paper() {
        // (60612, 6061x2): LCS is "6061".
        assert_eq!(lcs_str("60612", "6061x2"), "6061");
    }

    #[test]
    fn disjoint_strings() {
        let m = longest_common_substring("abc", "xyz");
        assert_eq!(m.len, 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(longest_common_substring("", "abc").len, 0);
        assert_eq!(longest_common_substring("abc", "").len, 0);
        assert_eq!(longest_common_substring("", "").len, 0);
    }

    #[test]
    fn match_in_middle() {
        let m = longest_common_substring("xxchicagoyy", "aachicagobb");
        assert_eq!(m.start_a, 2);
        assert_eq!(m.start_b, 2);
        assert_eq!(m.len, 7);
    }

    #[test]
    fn earliest_tie_break() {
        // Both "ab" matches have length 2; the earliest in `a` wins.
        let m = longest_common_substring("abab", "ab");
        assert_eq!(m.start_a, 0);
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(lcs_str("caféx", "ycafé"), "café");
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The reported match really is a common substring of both inputs.
        #[test]
        fn reported_match_is_common(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let m = longest_common_substring(&a, &b);
            let sa: String = a.chars().skip(m.start_a).take(m.len).collect();
            let sb: String = b.chars().skip(m.start_b).take(m.len).collect();
            prop_assert_eq!(&sa, &sb);
            if m.len > 0 {
                prop_assert!(a.contains(&sa));
                prop_assert!(b.contains(&sa));
            }
        }

        /// Symmetric in length: |LCS(a,b)| == |LCS(b,a)|.
        #[test]
        fn length_symmetric(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let m1 = longest_common_substring(&a, &b);
            let m2 = longest_common_substring(&b, &a);
            prop_assert_eq!(m1.len, m2.len);
        }

        /// A string's LCS with itself is itself.
        #[test]
        fn self_lcs(a in "[a-z]{0,16}") {
            let m = longest_common_substring(&a, &a);
            prop_assert_eq!(m.len, a.chars().count());
        }

        /// No common substring can be longer than the shorter input.
        #[test]
        fn bounded_by_shorter(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let m = longest_common_substring(&a, &b);
            prop_assert!(m.len <= a.chars().count().min(b.chars().count()));
        }
    }
}
