//! # holo-text
//!
//! String substrate for the HoloDetect reproduction.
//!
//! Every representation model and the noisy-channel learner of the paper
//! operate on cell values as strings. This crate provides the shared,
//! dependency-free primitives they need:
//!
//! * [`tokenize`] — word- and character-level tokenization,
//! * [`ngrams`] — character n-grams and *symbolic* n-grams over the
//!   `{Char, Num, Sym}` alphabet (Appendix A.1 of the paper),
//! * [`lcs`] — longest common substring (used by Algorithm 1),
//! * [`similarity`] — the `2·C/S` common-character overlap from §5.2 and
//!   the full Ratcliff–Obershelp ratio,
//! * [`classes`] — the symbol-class alphabet,
//! * [`edit`] — Levenshtein distance (used in tests and baselines).
//!
//! All functions operate on `&str` and are careful to respect UTF-8
//! boundaries; internally they work over `Vec<char>` where index
//! arithmetic is required.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod classes;
pub mod edit;
pub mod lcs;
pub mod ngrams;
pub mod similarity;
pub mod tokenize;

pub use classes::{symbol_class, symbolize, SymbolClass};
pub use edit::levenshtein;
pub use lcs::{longest_common_substring, LcsMatch};
pub use ngrams::{char_ngrams, least_frequent_ngram, padded_char_ngrams, symbolic_ngrams};
pub use similarity::{char_overlap, ratcliff_obershelp};
pub use tokenize::{char_tokens, word_tokens};
