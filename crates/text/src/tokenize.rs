//! Tokenizers shared by the embedding corpora and representation models.
//!
//! The paper builds FastText-style embeddings at three token granularities
//! (characters, in-cell words, and whole tuples treated as bags of words).
//! The two functions here produce the first two; tuple bags are assembled
//! by `holo-embed::corpus` from word tokens.

/// Split a cell value into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else
/// (punctuation, whitespace) separates tokens. Tokens are lowercased so
/// `"EVP Coffee"` and `"evp coffee"` share a vocabulary entry.
pub fn word_tokens(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Split a cell value into single-character tokens (as `String`s).
///
/// Used by the character-level sequence model. Whitespace is kept: a typo
/// that inserts a space is a real error signal.
pub fn char_tokens(s: &str) -> Vec<String> {
    s.chars().map(|c| c.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_on_punct_and_space() {
        assert_eq!(
            word_tokens("EVP Coffee, IL-60612"),
            vec!["evp", "coffee", "il", "60612"]
        );
    }

    #[test]
    fn words_empty_and_all_punct() {
        assert!(word_tokens("").is_empty());
        assert!(word_tokens("--- !!").is_empty());
    }

    #[test]
    fn words_single_token() {
        assert_eq!(word_tokens("Chicago"), vec!["chicago"]);
    }

    #[test]
    fn chars_keep_everything() {
        assert_eq!(char_tokens("a b"), vec!["a", " ", "b"]);
    }

    #[test]
    fn chars_empty() {
        assert!(char_tokens("").is_empty());
    }
}
