//! String similarity measures used by the transformation learner.
//!
//! §5.2 of the paper: "We compute the overlap of two strings as `2·C/S`,
//! where `C` is the number of common characters in the two strings, and
//! `S` is the sum of their lengths." That is [`char_overlap`]. We also
//! provide the full Ratcliff–Obershelp ratio ([`ratcliff_obershelp`]),
//! which recursively counts matching blocks — the algorithm the paper's
//! pattern matcher is modelled after \[51\].

use crate::lcs::lcs_chars;
use std::collections::HashMap;

/// The `2·C/S` overlap where `C` counts common characters as multisets.
///
/// Returns a value in `\[0, 1\]`; two empty strings are defined to have
/// similarity `1.0` (they are identical).
pub fn char_overlap(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la + lb == 0 {
        return 1.0;
    }
    let mut counts: HashMap<char, isize> = HashMap::with_capacity(la.min(lb));
    for c in a.chars() {
        *counts.entry(c).or_insert(0) += 1;
    }
    let mut common = 0usize;
    for c in b.chars() {
        if let Some(n) = counts.get_mut(&c) {
            if *n > 0 {
                *n -= 1;
                common += 1;
            }
        }
    }
    2.0 * common as f64 / (la + lb) as f64
}

/// The Ratcliff–Obershelp similarity ratio: `2·M/S` where `M` is the total
/// length of recursively matched blocks (longest common substring, then
/// recurse on both sides).
pub fn ratcliff_obershelp(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let total = ac.len() + bc.len();
    if total == 0 {
        return 1.0;
    }
    let matched = matching_blocks_len(&ac, &bc);
    2.0 * matched as f64 / total as f64
}

fn matching_blocks_len(a: &[char], b: &[char]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let m = lcs_chars(a, b);
    if m.len == 0 {
        return 0;
    }
    m.len
        + matching_blocks_len(&a[..m.start_a], &b[..m.start_b])
        + matching_blocks_len(&a[m.start_a + m.len..], &b[m.start_b + m.len..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert_eq!(char_overlap("chicago", "chicago"), 1.0);
        assert_eq!(ratcliff_obershelp("chicago", "chicago"), 1.0);
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(char_overlap("abc", "xyz"), 0.0);
        assert_eq!(ratcliff_obershelp("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_pair_is_one() {
        assert_eq!(char_overlap("", ""), 1.0);
        assert_eq!(ratcliff_obershelp("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(char_overlap("", "a"), 0.0);
        assert_eq!(ratcliff_obershelp("", "a"), 0.0);
    }

    #[test]
    fn overlap_counts_multiset() {
        // "aab" vs "abb": common multiset {a, b} => C = 2, S = 6.
        assert!((char_overlap("aab", "abb") - 2.0 * 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ro_typo_pair() {
        // 60612 vs 6061x2: blocks "6061" + "2" = 5 of 11 chars.
        let sim = ratcliff_obershelp("60612", "6061x2");
        assert!((sim - 2.0 * 5.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn ro_order_sensitive_overlap_not() {
        // char_overlap ignores order; RO mostly does not.
        assert_eq!(char_overlap("abcd", "dcba"), 1.0);
        assert!(ratcliff_obershelp("abcd", "dcba") < 1.0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn overlap_in_unit_interval(a in ".{0,16}", b in ".{0,16}") {
            let s = char_overlap(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn overlap_symmetric(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            prop_assert!((char_overlap(&a, &b) - char_overlap(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn ro_in_unit_interval(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            let s = ratcliff_obershelp(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn self_similarity_is_one(a in ".{0,16}") {
            prop_assert!((char_overlap(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((ratcliff_obershelp(&a, &a) - 1.0).abs() < 1e-12);
        }

        /// RO can never exceed the multiset overlap (blocks are a subset of
        /// common characters).
        #[test]
        fn ro_bounded_by_overlap(a in "[a-d]{0,12}", b in "[a-d]{0,12}") {
            prop_assert!(ratcliff_obershelp(&a, &b) <= char_overlap(&a, &b) + 1e-12);
        }
    }
}
