//! The symbol-class alphabet used by the *symbolic 3-gram* format model.
//!
//! Appendix A.1 of the paper describes a variation of the 3-gram format
//! model where "each character is replaced by a token `{Char, Num, Sym}`".
//! This module implements that mapping.

/// The coarse class of a character in the symbolic format alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SymbolClass {
    /// An alphabetic character (`a-z`, `A-Z`, and any Unicode letter).
    Char,
    /// A decimal digit.
    Num,
    /// Anything else: punctuation, whitespace, symbols.
    Sym,
}

impl SymbolClass {
    /// A single-character rendering used when building symbolic n-grams.
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            SymbolClass::Char => 'C',
            SymbolClass::Num => 'N',
            SymbolClass::Sym => 'S',
        }
    }
}

/// Classify a single character into its [`SymbolClass`].
#[inline]
pub fn symbol_class(c: char) -> SymbolClass {
    if c.is_alphabetic() {
        SymbolClass::Char
    } else if c.is_ascii_digit() {
        SymbolClass::Num
    } else {
        SymbolClass::Sym
    }
}

/// Replace every character of `s` with its symbol class letter.
///
/// `"60612-A"` becomes `"NNNNNSC"`. The result always has the same number
/// of `char`s as the input.
pub fn symbolize(s: &str) -> String {
    s.chars().map(|c| symbol_class(c).as_char()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_letters_digits_symbols() {
        assert_eq!(symbol_class('a'), SymbolClass::Char);
        assert_eq!(symbol_class('Z'), SymbolClass::Char);
        assert_eq!(symbol_class('7'), SymbolClass::Num);
        assert_eq!(symbol_class('-'), SymbolClass::Sym);
        assert_eq!(symbol_class(' '), SymbolClass::Sym);
    }

    #[test]
    fn unicode_letters_are_chars() {
        assert_eq!(symbol_class('é'), SymbolClass::Char);
        assert_eq!(symbol_class('ß'), SymbolClass::Char);
    }

    #[test]
    fn symbolize_zip_plus_suffix() {
        assert_eq!(symbolize("60612-A"), "NNNNNSC");
    }

    #[test]
    fn symbolize_empty() {
        assert_eq!(symbolize(""), "");
    }

    #[test]
    fn symbolize_preserves_char_count() {
        let s = "Chicago, IL 60612";
        assert_eq!(symbolize(s).chars().count(), s.chars().count());
    }
}
