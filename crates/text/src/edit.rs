//! Levenshtein edit distance.
//!
//! Not used by the paper's model directly, but needed across the
//! reproduction: the BART-style error generator asserts that injected
//! typos stay within an edit budget, and several tests sanity-check
//! learned transformations against the true edit.

/// Classic Levenshtein distance (insertions, deletions, substitutions all
/// cost 1), computed over `char`s with a rolling 1-D DP in
/// `O(|a|·|b|)` time and `O(min)` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (short, long) = if ac.len() <= bc.len() {
        (&ac, &bc)
    } else {
        (&bc, &ac)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &cl) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cs) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(cl != cs);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_zero() {
        assert_eq!(levenshtein("chicago", "chicago"), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(levenshtein("chicago", "cicago"), 1); // deletion
        assert_eq!(levenshtein("chicago", "chixago"), 1); // substitution
        assert_eq!(levenshtein("chicago", "chiccago"), 1); // insertion
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
    }

    #[test]
    fn known_pair() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn symmetric(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn triangle_inequality(
            a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
        ) {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn bounded_by_longer(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d <= la.max(lb));
            prop_assert!(d >= la.abs_diff(lb));
        }

        #[test]
        fn zero_iff_equal(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
            prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        }
    }
}
