//! Character n-grams and symbolic n-grams for the format models.
//!
//! Appendix A.1: the format representation is "the frequency of the least
//! frequent 3-gram in the cell", computed against a per-column n-gram
//! distribution with Laplace smoothing; the symbolic variant first maps
//! each character onto the `{Char, Num, Sym}` alphabet.

use crate::classes::symbolize;

/// All contiguous character `n`-grams of `s`, in order, as `String`s.
///
/// Strings shorter than `n` yield a single n-gram equal to the whole
/// string (so even `""` and `"ab"` have a format signature), mirroring
/// how smoothed language models back off on short values.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram order must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// N-grams over the string padded with `^` (start) and `$` (end) markers.
///
/// Padding lets the model distinguish "starts with a digit" from
/// "contains a digit", which matters for format errors at value
/// boundaries. Also the FastText subword convention.
pub fn padded_char_ngrams(s: &str, n: usize) -> Vec<String> {
    let padded = format!("^{s}$");
    char_ngrams(&padded, n)
}

/// Symbolic n-grams: n-grams of the `{C, N, S}` class string of `s`.
pub fn symbolic_ngrams(s: &str, n: usize) -> Vec<String> {
    char_ngrams(&symbolize(s), n)
}

/// Given a probability lookup for n-grams, return the probability of the
/// *least probable* n-gram of `s` (the paper's fixed-dimension aggregate).
///
/// `prob` should already incorporate smoothing; an n-gram the lookup has
/// never seen should still get a small non-zero probability from it.
pub fn least_frequent_ngram<F>(s: &str, n: usize, prob: F) -> f64
where
    F: Fn(&str) -> f64,
{
    char_ngrams(s, n)
        .iter()
        .map(|g| prob(g))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_basic() {
        assert_eq!(char_ngrams("60612", 3), vec!["606", "061", "612"]);
    }

    #[test]
    fn short_string_single_gram() {
        assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
        assert_eq!(char_ngrams("", 3), vec![""]);
    }

    #[test]
    fn padded_adds_markers() {
        assert_eq!(padded_char_ngrams("ab", 3), vec!["^ab", "ab$"]);
    }

    #[test]
    fn symbolic_trigrams() {
        assert_eq!(symbolic_ngrams("a1-", 3), vec!["CNS"]);
        assert_eq!(symbolic_ngrams("60612", 3), vec!["NNN", "NNN", "NNN"]);
    }

    #[test]
    fn least_frequent_picks_min() {
        let p = |g: &str| if g == "061" { 0.001 } else { 0.5 };
        assert!((least_frequent_ngram("60612", 3, p) - 0.001).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_order_panics() {
        char_ngrams("abc", 0);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn count_matches_length(s in ".{0,24}", n in 1usize..5) {
            let grams = char_ngrams(&s, n);
            let chars = s.chars().count();
            let expect = if chars < n { 1 } else { chars - n + 1 };
            prop_assert_eq!(grams.len(), expect);
        }

        #[test]
        fn each_gram_has_order_chars(s in "[a-z]{4,16}", n in 1usize..4) {
            for g in char_ngrams(&s, n) {
                prop_assert_eq!(g.chars().count(), n);
            }
        }

        #[test]
        fn grams_are_substrings(s in "[a-z0-9]{0,16}", n in 1usize..4) {
            for g in char_ngrams(&s, n) {
                prop_assert!(s.contains(&g));
            }
        }

        #[test]
        fn symbolic_alphabet_is_cns(s in ".{0,16}") {
            for g in symbolic_ngrams(&s, 3) {
                prop_assert!(g.chars().all(|c| matches!(c, 'C' | 'N' | 'S')));
            }
        }
    }
}
