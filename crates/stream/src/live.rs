//! The live model: a served artifact plus the machinery that keeps it
//! current as reference data streams in.
//!
//! ## Concurrency model
//!
//! * **score** — read lock on the model state; unbounded concurrency.
//! * **ingest** — write lock for the duration of one batch: ops are
//!   appended durably to the delta log (group commit), applied via
//!   `FittedHoloDetect::apply_delta`, and the new rows' drift
//!   statistics measured. Bounded by batch size, never by model
//!   training.
//! * **refit** — the expensive part (`refit_with`: re-train classifier,
//!   re-calibrate, re-tune the threshold) runs on a *snapshot* taken
//!   through an in-memory save/load under a read lock, entirely outside
//!   the state lock. The refitted artifact is persisted
//!   (temp-file + rename), the log compacted to its epoch, and the
//!   result installed under a brief write lock that replays whatever
//!   ops arrived mid-refit — so a refit never loses deltas and never
//!   blocks scoring beyond the final pointer swap.
//!
//! Lock order (outermost first):
//! `refit_lock → state → log → drift → labels → timelines`. Any path
//! may take a suffix of that chain, never a prefix out of order.
//!
//! Every lock in the chain is a contention-instrumented
//! [`holo_prof::ProfMutex`] / [`holo_prof::ProfRwLock`] registered
//! under its field name, so `/v1/prof` can show (for example) scoring
//! reads stalling behind ingest writes on `state`. Instrumentation
//! changes nothing about ordering or poisoning semantics.
//!
//! ## Adaptation
//!
//! Labels posted through [`LiveModel::add_labels`] serve twice: each
//! labeled cell is immediately spot-checked against the current model
//! (feeding the probe drift signal), and the labels are buffered so the
//! next refit runs the few-shot adaptive path —
//! `holo_adapt::AdaptiveRefit` learns the drifted error channel from
//! the labels' `(clean, observed)` pairs, amplifies it, and extends the
//! training set — instead of retraining on the stale fit-time examples
//! alone. Labels are only drained once the refit that consumed them
//! succeeds.
//!
//! ## Durability
//!
//! The invariant is `artifact ⊕ log = state`: the artifact file always
//! corresponds to the log's compaction horizon. [`LiveModel::open`]
//! restores a crashed process by loading the artifact and replaying the
//! log tail — landing on the exact epoch (and, by the parity bar, the
//! exact scores) the process died with.

use crate::drift::{DriftMonitor, DriftReport, DriftThresholds, SignalStat};
use holo_adapt::{AdaptConfig, AdaptiveRefit, RowLabel};
use holo_data::{binio, CellId, Dataset, DeltaLog, DeltaOp, Schema};
use holo_eval::{ModelError, TrainedModel};
use holo_prof::{ProfMutex, ProfRwLock};
use holo_trace::{RefitTimeline, Stopwatch, TimelineRing};
use holodetect::FittedHoloDetect;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Saturating counter increment — lifetime counters must peg at
/// `u64::MAX`, never wrap back to zero and fake a reset (the same
/// `fetch_update` idiom the serving metrics use).
fn sat_add(counter: &AtomicU64, v: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_add(v))
    });
}

/// The typed refusal mutating paths answer when a lock was poisoned by
/// a panic elsewhere: half-applied state must not be mutated further.
/// (Read-only paths *recover* instead — see the accessors below — so a
/// panicked ingest can never take scoring availability down with it.)
fn poisoned(what: &str) -> ModelError {
    ModelError::Format(format!(
        "{what} lock was poisoned by an earlier panic; refusing to mutate live state"
    ))
}

/// Magic of the epoch-stamped artifact wrapper refits write: the epoch
/// travels *inside* the same atomically renamed file as the model, so
/// no crash can separate them.
const LIVE_MAGIC: &[u8; 8] = b"HOLOLIVE";
/// Wrapper format version.
const LIVE_VERSION: u32 = 1;

/// Refit timelines retained per live model (newest win; the ring is
/// what `GET /v1/models/{name}/refits` pages through).
const REFIT_TIMELINE_CAP: usize = 32;

/// Atomically persist `model` stamped with the epoch it corresponds to
/// (temp file + rename). The file starts with [`LIVE_MAGIC`]; a plain
/// `FittedHoloDetect::save` artifact remains readable everywhere a
/// stamped one is (it is taken to sit at the log's compaction horizon).
fn write_epoch_artifact(
    path: &Path,
    model: &FittedHoloDetect,
    epoch: u64,
) -> Result<(), ModelError> {
    let tmp = path.with_extension("holoart.tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        w.write_all(LIVE_MAGIC)?;
        binio::write_u32(&mut w, LIVE_VERSION)?;
        binio::write_u64(&mut w, epoch)?;
        model.save_to(&mut w)?;
        w.flush()?;
        w.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load an artifact file that is either a plain `.holoart`
/// (`FittedHoloDetect::save`) or the epoch-stamped wrapper refits
/// write. Returns the model and, for stamped files, its epoch.
fn read_epoch_artifact(path: &Path) -> Result<(FittedHoloDetect, Option<u64>), ModelError> {
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic == LIVE_MAGIC {
        let version = binio::read_u32(&mut r)?;
        if version != LIVE_VERSION {
            return Err(ModelError::Format(format!(
                "unsupported live artifact version {version}"
            )));
        }
        let epoch = binio::read_u64(&mut r)?;
        let model = FittedHoloDetect::load_from(&mut r)?;
        Ok((model, Some(epoch)))
    } else {
        Ok((FittedHoloDetect::load(path)?, None))
    }
}

/// Streaming knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// First-moment gap (violation rate / score mean, both in `[0, 1]`)
    /// past which those signals fire.
    pub drift_threshold: f64,
    /// Don't consider a refit before this many rows arrived since the
    /// last one (keeps a handful of unlucky early rows from triggering
    /// an expensive retrain).
    pub min_rows_between_refits: u64,
    /// Rows sampled (evenly strided) from the reference when anchoring
    /// the baseline score mean and score histograms.
    pub baseline_sample_rows: usize,
    /// Per-attribute PSI past which the PSI signal fires.
    pub psi_threshold: f64,
    /// Per-attribute KS statistic past which the KS signal fires.
    pub ks_threshold: f64,
    /// Probe disagreement rate past which the probe signal fires.
    pub probe_threshold: f64,
    /// Labeled spot checks required before the probe signal may fire.
    pub min_probe_labels: u64,
    /// Bins in the drift score histograms. Calibrated error scores
    /// concentrate near zero (a healthy model scores almost every cell
    /// well under its threshold), so the shape signals need bins fine
    /// enough to resolve movement *inside* that low-score mass — at the
    /// coarse `holo_adapt::DEFAULT_SCORE_BINS` the census quiet swap drift
    /// is invisible (PSI ≈ 0.04), at 40 bins it is loud (PSI ≈ 0.85).
    pub score_bins: usize,
    /// Pending labels the buffer holds before refusing more (back
    /// pressure; a refit drains what it consumes).
    pub max_label_buffer: usize,
    /// Labels one adaptive refit consumes at most (the few-shot
    /// budget — HoloDetect's §5 regime).
    pub refit_label_budget: usize,
    /// SGNS passes of the incremental embedding refresh each refit runs
    /// over the delta-log rows accumulated since the last refit, before
    /// retraining the classifier (`0` disables the refresh and keeps the
    /// fit-time embeddings frozen, the pre-refresh behaviour). The
    /// refresh is deterministic and only touches new/changed contexts,
    /// so it is cheap next to the retrain it precedes.
    pub embed_refresh_epochs: usize,
    /// Worker threads for the sharded refit SGD loop (`None` keeps the
    /// artifact's own `cfg.threads`). Thread count never changes scores:
    /// the trainer's shard decomposition is fixed, so an N-thread refit
    /// is bitwise-equal to a single-threaded one at the same seed.
    pub refit_threads: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            drift_threshold: 0.2,
            min_rows_between_refits: 64,
            baseline_sample_rows: 256,
            psi_threshold: 0.25,
            ks_threshold: 0.2,
            probe_threshold: 0.3,
            min_probe_labels: 8,
            score_bins: 40,
            max_label_buffer: 1024,
            refit_label_budget: 20,
            embed_refresh_epochs: 0,
            refit_threads: None,
        }
    }
}

impl StreamConfig {
    /// The drift thresholds this configuration implies.
    pub fn thresholds(&self) -> DriftThresholds {
        DriftThresholds {
            gap: self.drift_threshold,
            psi: self.psi_threshold,
            ks: self.ks_threshold,
            probe: self.probe_threshold,
            min_probe_labels: self.min_probe_labels,
            score_bins: self.score_bins,
        }
    }
}

/// What one ingest call did.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Rows appended.
    pub appended: usize,
    /// The epoch after the batch.
    pub epoch: u64,
    /// Drift after folding the batch in.
    pub drift: f64,
    /// Wall-clock spent durably appending the batch to the delta log
    /// (group commit). Zero for an empty batch.
    pub log_append_micros: u64,
    /// Wall-clock spent applying the appended ops to the in-memory
    /// model. Zero for an empty batch.
    pub apply_delta_micros: u64,
    /// Wall-clock spent measuring the new rows' drift statistics
    /// (violations, scores, histogram folds). Zero for an empty batch.
    pub drift_update_micros: u64,
}

struct LiveState {
    model: FittedHoloDetect,
    epoch: u64,
}

/// A served model with streaming maintenance. See the module docs.
pub struct LiveModel {
    path: PathBuf,
    schema: Schema,
    cfg: StreamConfig,
    state: ProfRwLock<LiveState>,
    log: ProfMutex<DeltaLog>,
    drift: ProfMutex<DriftMonitor>,
    /// Serializes refits (scheduler vs. the `/refit` endpoint).
    refit_lock: ProfMutex<()>,
    /// Pending operator labels, oldest first — the few-shot budget the
    /// next adaptive refit draws from.
    labels: ProfMutex<Vec<RowLabel>>,
    /// Phase-attributed timelines of the last few refits (what
    /// `GET /v1/models/{name}/refits` serves). Last in the lock order.
    timelines: ProfMutex<TimelineRing>,
    /// Bumped on every install (hot swap).
    generation: AtomicU64,
    rows_ingested: AtomicU64,
    refits: AtomicU64,
    labels_received: AtomicU64,
    labels_consumed: AtomicU64,
}

impl LiveModel {
    /// Wrap a loaded artifact and its delta log. The artifact must
    /// correspond to the log's compaction horizon (`base_epoch`); any
    /// log tail beyond it is replayed immediately (crash recovery).
    ///
    /// # Errors
    /// [`ModelError::Degenerate`] for an artifact with no fitted state
    /// (streaming needs a schema and a reference to maintain);
    /// [`ModelError::Format`] when the log's schema does not match.
    pub fn new(
        mut model: FittedHoloDetect,
        log: DeltaLog,
        artifact_path: &Path,
        cfg: StreamConfig,
    ) -> Result<Self, ModelError> {
        let Some(artifact) = model.artifact() else {
            return Err(ModelError::Degenerate {
                method: model.method().to_owned(),
            });
        };
        let schema = artifact.reference().schema().clone();
        if *log.schema() != schema {
            return Err(ModelError::Format(format!(
                "delta log schema {} does not match artifact schema {}",
                log.schema(),
                schema
            )));
        }
        for op in log.ops() {
            model.apply_delta(op)?;
        }
        let epoch = log.epoch();
        let drift = DriftMonitor::new_anchored(&model, &cfg)?;
        Ok(LiveModel {
            path: artifact_path.to_path_buf(),
            schema,
            cfg,
            state: ProfRwLock::new("state", LiveState { model, epoch }),
            log: ProfMutex::new("log", log),
            drift: ProfMutex::new("drift", drift),
            refit_lock: ProfMutex::new("refit_lock", ()),
            labels: ProfMutex::new("labels", Vec::new()),
            timelines: ProfMutex::new("timelines", TimelineRing::new(REFIT_TIMELINE_CAP)),
            generation: AtomicU64::new(0),
            rows_ingested: AtomicU64::new(0),
            refits: AtomicU64::new(0),
            labels_received: AtomicU64::new(0),
            labels_consumed: AtomicU64::new(0),
        })
    }

    /// Load the artifact at `artifact_path` (plain or epoch-stamped),
    /// open (or create) the delta log at `log_path`, replay any tail,
    /// and go live.
    ///
    /// A stamped artifact whose epoch is *ahead* of the log's
    /// compaction horizon heals the log first — that is the crash
    /// window between a refit's atomic artifact rename and its log
    /// compaction, and dropping the already-baked ops (instead of
    /// replaying them twice) is exactly what the interrupted compaction
    /// would have done.
    pub fn open(
        artifact_path: &Path,
        log_path: &Path,
        cfg: StreamConfig,
    ) -> Result<Self, ModelError> {
        let (model, file_epoch) = read_epoch_artifact(artifact_path)?;
        let Some(artifact) = model.artifact() else {
            return Err(ModelError::Degenerate {
                method: model.method().to_owned(),
            });
        };
        let schema = artifact.reference().schema().clone();
        let mut log = DeltaLog::open(log_path, schema)?;
        let artifact_epoch = file_epoch.unwrap_or_else(|| log.base_epoch());
        if artifact_epoch < log.base_epoch() {
            return Err(ModelError::Format(format!(
                "delta log was compacted past the artifact (artifact at epoch \
                 {artifact_epoch}, log horizon {})",
                log.base_epoch()
            )));
        }
        if artifact_epoch > log.epoch() {
            return Err(ModelError::Format(format!(
                "artifact (epoch {artifact_epoch}) is ahead of the delta log \
                 (epoch {})",
                log.epoch()
            )));
        }
        log.compact_through(artifact_epoch)?;
        Self::new(model, log, artifact_path, cfg)
    }

    /// The schema ingested rows must match.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The artifact file refits persist to (and reloads come from).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The streaming knobs.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The current epoch (ops applied since the original fit).
    pub fn epoch(&self) -> u64 {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .epoch
    }

    /// Hot-swap count: 0 until the first install.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Rows ingested over this process's lifetime.
    pub fn rows_ingested(&self) -> u64 {
        self.rows_ingested.load(Ordering::Relaxed)
    }

    /// Completed refits over this process's lifetime.
    pub fn refits_total(&self) -> u64 {
        self.refits.load(Ordering::Relaxed)
    }

    /// The model's method name (for logs).
    pub fn method(&self) -> &'static str {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .model
            .method()
    }

    /// The current decision threshold.
    pub fn default_threshold(&self) -> f64 {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .model
            .threshold()
    }

    /// Lifetime nn-cache counters of the currently installed model's
    /// featurizer (reset by hot swaps, which install a fresh
    /// featurizer). For `/metrics` export.
    pub fn nn_cache_stats(&self) -> holodetect::CacheStats {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .model
            .nn_cache_stats()
    }

    /// Score cells of `data` against the current maintained state.
    pub fn score_batch(&self, data: &Dataset, cells: &[CellId]) -> Result<Vec<f64>, ModelError> {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .model
            .score_batch(data, cells)
    }

    /// Append validated rows (values in schema order) to the reference:
    /// durably logged, incrementally applied, drift-measured. Returns
    /// the new epoch and drift level.
    pub fn ingest_rows(&self, rows: Vec<Vec<String>>) -> Result<IngestReport, ModelError> {
        if rows.is_empty() {
            let epoch = self.epoch();
            let drift = self
                .drift
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .report()
                .drift;
            return Ok(IngestReport {
                appended: 0,
                epoch,
                drift,
                log_append_micros: 0,
                apply_delta_micros: 0,
                drift_update_micros: 0,
            });
        }
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(ModelError::Format(format!(
                    "ingest row arity {} does not match schema arity {}",
                    row.len(),
                    self.schema.len()
                )));
            }
        }
        let appended = rows.len();
        let mut st = self.state.write().map_err(|_| poisoned("live state"))?;
        // Log first (durability), group-committed; then apply.
        let append_clock = Stopwatch::start();
        let epoch = {
            let mut log = self.log.lock().map_err(|_| poisoned("delta log"))?;
            for row in &rows {
                log.append(DeltaOp::Append {
                    values: row.clone(),
                })?;
            }
            log.flush()?;
            log.epoch()
        };
        let log_append_micros = append_clock.elapsed_micros();
        let Some(artifact) = st.model.artifact() else {
            return Err(ModelError::Degenerate {
                method: st.model.method().to_owned(),
            });
        };
        let first_new = artifact.reference().n_tuples();
        let apply_clock = Stopwatch::start();
        for row in rows {
            st.model.apply_delta(&DeltaOp::Append { values: row })?;
        }
        st.epoch = epoch;
        drop(st);
        let apply_delta_micros = apply_clock.elapsed_micros();

        // Drift statistics for the freshly appended rows — violations
        // on arrival plus the model's own scores for their cells —
        // computed under a *read* lock so concurrent scorers are never
        // blocked on this bookkeeping. The session is append-only, so
        // rows `first_new..` stay addressable even if more batches land
        // in between (their stats are folded by their own calls).
        let drift_clock = Stopwatch::start();
        let (violating, scores) = {
            let st = self.state.read().unwrap_or_else(PoisonError::into_inner);
            let Some(artifact) = st.model.artifact() else {
                return Err(ModelError::Degenerate {
                    method: st.model.method().to_owned(),
                });
            };
            let reference = artifact.reference();
            let na = reference.n_attrs();
            let nt = first_new + appended;
            let violating = (first_new..nt)
                .filter(|&t| st.model.tuple_violations(t) > 0)
                .count() as u64;
            let cells: Vec<CellId> = (first_new..nt)
                .flat_map(|t| (0..na).map(move |a| CellId::new(t, a)))
                .collect();
            (violating, st.model.score_batch(reference, &cells)?)
        };

        let drift = {
            // Recover even though this mutates: the rows are already
            // durably logged and applied, so failing the whole ingest
            // over advisory drift bookkeeping would mislead the caller.
            // A NaN score still errors out (`record_batch`): that is
            // model corruption, not advisory bookkeeping.
            let mut d = self.drift.lock().unwrap_or_else(PoisonError::into_inner);
            d.record_batch(appended as u64, violating, &scores)?;
            d.report().drift
        };
        let drift_update_micros = drift_clock.elapsed_micros();
        sat_add(&self.rows_ingested, appended as u64);
        Ok(IngestReport {
            appended,
            epoch,
            drift,
            log_append_micros,
            apply_delta_micros,
            drift_update_micros,
        })
    }

    /// The current drift report.
    pub fn drift_report(&self) -> DriftReport {
        self.drift
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .report()
    }

    /// Every drift signal's current value against its threshold — the
    /// diagnosis `GET /drift` serves alongside the report.
    pub fn drift_stats(&self) -> Vec<SignalStat> {
        self.drift
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// `true` when the scheduler should refit: enough rows since the
    /// last refit and at least one drift signal past its threshold.
    pub fn should_refit(&self) -> bool {
        let r = self.drift_report();
        r.rows_since_refit >= self.cfg.min_rows_between_refits && !r.fired.is_empty()
    }

    /// Operator labels waiting for the next adaptive refit.
    pub fn labels_pending(&self) -> usize {
        self.labels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Labels accepted over this process's lifetime.
    pub fn labels_received(&self) -> u64 {
        self.labels_received.load(Ordering::Relaxed)
    }

    /// Labels consumed by completed refits over this process's lifetime.
    pub fn labels_consumed(&self) -> u64 {
        self.labels_consumed.load(Ordering::Relaxed)
    }

    /// Accept operator labels on the maintained reference: validate
    /// them against the current state, spot-check every labeled cell
    /// against the model's prediction (the probe drift signal), and
    /// buffer them for the next adaptive refit. Returns how many labels
    /// were accepted (all of them, or a typed error — never a silent
    /// partial accept).
    ///
    /// # Errors
    /// [`ModelError::CellOutOfBounds`] / [`ModelError::Format`] for a
    /// label addressing outside the reference or with the wrong arity;
    /// [`ModelError::Format`] when the buffer is full (back pressure —
    /// refit to drain it).
    pub fn add_labels(&self, new_labels: Vec<RowLabel>) -> Result<usize, ModelError> {
        if new_labels.is_empty() {
            return Ok(0);
        }
        {
            let st = self.state.read().unwrap_or_else(PoisonError::into_inner);
            let Some(artifact) = st.model.artifact() else {
                return Err(ModelError::Degenerate {
                    method: st.model.method().to_owned(),
                });
            };
            let reference = artifact.reference();
            let (nt, na) = (reference.n_tuples(), reference.n_attrs());
            for label in &new_labels {
                if label.row >= nt {
                    return Err(ModelError::CellOutOfBounds {
                        cell: CellId::new(label.row, 0),
                        n_tuples: nt,
                        n_attrs: na,
                    });
                }
                if label.clean.len() != na {
                    return Err(ModelError::Format(format!(
                        "label for row {} has arity {}, schema has {}",
                        label.row,
                        label.clean.len(),
                        na
                    )));
                }
            }
            // Every label doubles as a spot check of the current model.
            let mut d = self.drift.lock().unwrap_or_else(PoisonError::into_inner);
            AdaptiveRefit::default().probe(&st.model, &new_labels, d.probes_mut())?;
        }
        let accepted = new_labels.len();
        {
            let mut buf = self.labels.lock().map_err(|_| poisoned("label buffer"))?;
            if buf.len().saturating_add(accepted) > self.cfg.max_label_buffer {
                return Err(ModelError::Format(format!(
                    "label buffer full ({} pending, capacity {}); refit to drain it",
                    buf.len(),
                    self.cfg.max_label_buffer
                )));
            }
            buf.extend(new_labels);
        }
        sat_add(&self.labels_received, accepted as u64);
        Ok(accepted)
    }

    /// Refit on a snapshot of the current state — classifier,
    /// calibration, and threshold re-learned over the maintained
    /// representation — persist the result atomically to the artifact
    /// path, and compact the log to the snapshot's epoch. Scoring and
    /// ingest proceed throughout: the only state lock taken is a read
    /// lock for the in-memory snapshot.
    ///
    /// When operator labels are pending ([`LiveModel::add_labels`]),
    /// this is the *adaptive* path: up to `refit_label_budget` labels
    /// are turned into drifted-channel training examples by
    /// `holo_adapt::AdaptiveRefit` (learn the channel from the labels'
    /// error pairs, amplify by augmentation) before the retrain — the
    /// only way a refit recovers from a changed error channel. Consumed
    /// labels are drained only after the refit succeeds, so a failed
    /// refit loses nothing. With no labels pending this degrades to the
    /// label-free `refit_with(vec![])`.
    ///
    /// The refitted artifact is *not* installed; hot-swapping happens
    /// through the serving registry's reload (or [`LiveModel::refit_now`]
    /// when no registry is involved), which replays any ops that
    /// arrived mid-refit.
    pub fn refit_to_disk(&self) -> Result<u64, ModelError> {
        self.refit_to_disk_as("manual")
    }

    /// [`LiveModel::refit_to_disk`] with an explicit trigger label
    /// (`"manual"` for operator requests, `"drift"` from the
    /// scheduler) — the label the refit's timeline records, so
    /// `GET /v1/models/{name}/refits` can tell drift-driven retrains
    /// from operator-driven ones.
    ///
    /// # Errors
    /// Exactly those of [`LiveModel::refit_to_disk`].
    pub fn refit_to_disk_as(&self, trigger: &str) -> Result<u64, ModelError> {
        // A poisoned refit lock guards no data (`Mutex<()>`) — recover.
        let _serialized = self
            .refit_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let snapshot_clock = Stopwatch::start();
        let (snapshot, base_epoch) = {
            let st = self.state.read().unwrap_or_else(PoisonError::into_inner);
            let mut buf = Vec::new();
            st.model.save_to(&mut buf)?;
            (buf, st.epoch)
        };
        // Rows appended since the last refit (the log compacts at each
        // refit, so everything it holds is this refit's delta) — the
        // corpus the incremental embedding refresh trains over.
        let delta_rows: Vec<Vec<String>> = if self.cfg.embed_refresh_epochs > 0 {
            let log = self.log.lock().map_err(|_| poisoned("delta log"))?;
            log.ops()
                .iter()
                .filter_map(|op| match op {
                    DeltaOp::Append { values } => Some(values.clone()),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        // Snapshot the label budget *after* the state snapshot: labels
        // are validated against the reference at add time and the
        // session is append-only, so every buffered label addresses
        // inside the snapshot's reference.
        let label_snapshot: Vec<RowLabel> = {
            let buf = self.labels.lock().map_err(|_| poisoned("label buffer"))?;
            buf.iter()
                .take(self.cfg.refit_label_budget)
                .cloned()
                .collect()
        };
        let mut copy = FittedHoloDetect::load_from(&mut std::io::Cursor::new(snapshot))?;
        if let Some(threads) = self.cfg.refit_threads {
            copy.set_threads(threads);
        }
        let snapshot_micros = snapshot_clock.elapsed_micros();
        // Delta-aware embeddings: fold the new rows' tokens into the
        // skip-gram tables before the classifier retrains over them, so
        // the refit sees fresh representations instead of frozen ones.
        let refresh_clock = Stopwatch::start();
        let embeddings_refreshed = if delta_rows.is_empty() {
            false
        } else {
            copy.refresh_embeddings(&delta_rows, self.cfg.embed_refresh_epochs)?
        };
        let embed_refresh_micros = refresh_clock.elapsed_micros();
        let adapt = AdaptiveRefit::new(AdaptConfig {
            max_labels: self.cfg.refit_label_budget,
            ..AdaptConfig::default()
        });
        let (refitted, adapt_report, adapt_timing) = adapt.refit_timed(copy, &label_snapshot)?;
        // The epoch rides inside the atomically renamed file, so a
        // crash between this rename and the compaction below cannot
        // desynchronize them: `open` sees artifact-epoch > log-horizon
        // and finishes the compaction instead of double-replaying.
        let persist_clock = Stopwatch::start();
        write_epoch_artifact(&self.path, &refitted, base_epoch)?;
        {
            let mut log = self.log.lock().map_err(|_| poisoned("delta log"))?;
            log.compact_through(base_epoch)?;
        }
        let persist_micros = persist_clock.elapsed_micros();
        // The refit is durable — now (and only now) drain the labels it
        // consumed. New labels appended mid-refit sit behind the
        // snapshot prefix and survive for the next round.
        {
            let mut buf = self.labels.lock().map_err(|_| poisoned("label buffer"))?;
            let consumed = adapt_report.labeled_rows.min(buf.len());
            buf.drain(..consumed);
            sat_add(&self.labels_consumed, consumed as u64);
        }
        sat_add(&self.refits, 1);
        // Phase durations clamp to ≥ 1µs: a phase that *ran* must be
        // distinguishable from one that is absent, however fast it was.
        let adapt_micros = adapt_timing
            .label_drain_micros
            .saturating_add(adapt_timing.channel_learn_micros)
            .saturating_add(adapt_timing.augment_micros);
        let mut timeline = RefitTimeline::new(self.model_label(), trigger, base_epoch);
        timeline.push_phase("snapshot", snapshot_micros.max(1));
        // Absent when the refresh is disabled or had no delta to fold —
        // a phase on the timeline means the refresh actually ran.
        if embeddings_refreshed {
            timeline.push_phase("embed-refresh", embed_refresh_micros.max(1));
        }
        timeline.push_phase("adapt", adapt_micros.max(1));
        timeline.push_phase("adapt.label-drain", adapt_timing.label_drain_micros.max(1));
        timeline.push_phase(
            "adapt.channel-learn",
            adapt_timing.channel_learn_micros.max(1),
        );
        timeline.push_phase("adapt.augment", adapt_timing.augment_micros.max(1));
        timeline.push_phase("refit_with", adapt_timing.refit_with_micros.max(1));
        timeline.push_phase("persist", persist_micros.max(1));
        self.timelines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(timeline);
        Ok(base_epoch)
    }

    /// The newest `k` refit timelines, most recent first.
    pub fn refit_timelines(&self, k: usize) -> Vec<RefitTimeline> {
        self.timelines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last(k)
    }

    /// The label refit timelines carry: the artifact file's stem.
    fn model_label(&self) -> &str {
        self.path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("model")
    }

    /// Install a model that corresponds to the log's compaction horizon
    /// (e.g. the operator's original plain artifact): replay the log
    /// tail onto it, swap it in under a brief write lock, re-anchor the
    /// drift baseline, and bump the generation. Returns the new
    /// generation. For the artifact *file* — which may be epoch-stamped
    /// by a refit — use [`LiveModel::reload_install`].
    pub fn install(&self, loaded: FittedHoloDetect) -> Result<u64, ModelError> {
        self.install_at(loaded, None)
    }

    /// Reload the artifact file (plain or epoch-stamped) and install
    /// it — the path every registry reload and drift-triggered hot swap
    /// goes through. Returns the new generation.
    pub fn reload_install(&self) -> Result<u64, ModelError> {
        let (loaded, file_epoch) = read_epoch_artifact(&self.path)?;
        self.install_at(loaded, file_epoch)
    }

    fn install_at(
        &self,
        mut loaded: FittedHoloDetect,
        file_epoch: Option<u64>,
    ) -> Result<u64, ModelError> {
        let install_clock = Stopwatch::start();
        let Some(artifact) = loaded.artifact() else {
            return Err(ModelError::Degenerate {
                method: loaded.method().to_owned(),
            });
        };
        if *artifact.reference().schema() != self.schema {
            return Err(ModelError::Format(
                "installed artifact schema does not match the live model".into(),
            ));
        }
        let artifact_epoch = {
            let mut st = self.state.write().map_err(|_| poisoned("live state"))?;
            let log = self.log.lock().map_err(|_| poisoned("delta log"))?;
            let artifact_epoch = file_epoch.unwrap_or_else(|| log.base_epoch());
            if artifact_epoch < log.base_epoch() || artifact_epoch > log.epoch() {
                return Err(ModelError::Format(format!(
                    "artifact epoch {artifact_epoch} is outside the log's \
                     range [{}, {}]",
                    log.base_epoch(),
                    log.epoch()
                )));
            }
            for op in log.ops_after(artifact_epoch) {
                loaded.apply_delta(op)?;
            }
            st.model = loaded;
            st.epoch = log.epoch();
            artifact_epoch
        };
        // Re-anchor the drift baseline under a *read* lock: the anchor
        // scores a reference sample, and holding the write lock for it
        // would block every concurrent scorer mid-swap.
        let anchored = {
            let st = self.state.read().unwrap_or_else(PoisonError::into_inner);
            DriftMonitor::new_anchored(&st.model, &self.cfg)?
        };
        // Whole-value overwrite, so recovery is safe even on this write.
        *self.drift.lock().unwrap_or_else(PoisonError::into_inner) = anchored;
        // Bump the generation only after the drift baseline is
        // re-anchored: anyone observing generation N must also observe
        // N's drift state (the scheduler's post-swap check relies on it).
        let generation =
            match self
                .generation
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |g| {
                    Some(g.saturating_add(1))
                }) {
                Ok(prev) | Err(prev) => prev.saturating_add(1),
            };
        // Close the matching refit timeline, if one is still retained —
        // a plain-artifact install (epoch at the log horizon with no
        // pending refit) simply finds nothing to mark.
        self.timelines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .mark_installed(artifact_epoch, install_clock.elapsed_micros().max(1));
        Ok(generation)
    }

    /// [`LiveModel::refit_to_disk`] followed by a reload-and-install
    /// from the artifact file — the registry-free path (library users,
    /// tests, the CLI's standalone mode). Returns the new generation.
    pub fn refit_now(&self) -> Result<u64, ModelError> {
        self.refit_to_disk()?;
        self.reload_install()
    }
}

impl DriftMonitor {
    /// A monitor anchored at `model`'s current statistics: the
    /// reference's violation rate, plus the mean score *and*
    /// per-attribute score histograms over an evenly strided sample of
    /// reference rows.
    ///
    /// # Errors
    /// [`ModelError::Format`] if the model produces a NaN score over
    /// its own reference (model corruption).
    pub fn new_anchored(
        model: &FittedHoloDetect,
        cfg: &StreamConfig,
    ) -> Result<DriftMonitor, ModelError> {
        let (_, violation_rate) = model.violation_stats();
        let n_attrs = model.artifact().map_or(0, |a| a.reference().n_attrs());
        let scores = baseline_scores(model, cfg.baseline_sample_rows);
        let score_mean = if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        let mut m = DriftMonitor::new(violation_rate, score_mean, n_attrs, cfg.thresholds());
        m.record_baseline_scores(&scores)?;
        Ok(m)
    }
}

/// Scores of every cell of up to `sample_rows` evenly strided reference
/// rows, in row-major `(tuple, attr)` order (the layout the drift
/// histograms expect). Empty for a degenerate model or empty reference.
fn baseline_scores(model: &FittedHoloDetect, sample_rows: usize) -> Vec<f64> {
    let Some(artifact) = model.artifact() else {
        return Vec::new();
    };
    let reference = artifact.reference();
    let nt = reference.n_tuples();
    if nt == 0 || sample_rows == 0 {
        return Vec::new();
    }
    let stride = nt.div_ceil(sample_rows).max(1);
    let na = reference.n_attrs();
    let cells: Vec<CellId> = (0..nt)
        .step_by(stride)
        .flat_map(|t| (0..na).map(move |a| CellId::new(t, a)))
        .collect();
    model.score_batch(reference, &cells).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_data::{DatasetBuilder, GroundTruth};
    use holo_eval::FitContext;
    use holodetect::{HoloDetect, HoloDetectConfig};

    fn world() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..25 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        (dirty, truth)
    }

    fn fit_artifact(tag: &str) -> (PathBuf, PathBuf) {
        let (dirty, truth) = world();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 8;
        let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
        let model = HoloDetect::new(cfg).fit_model(&FitContext {
            dirty: &dirty,
            train: &train,
            sampling: None,
            constraints: &[],
            seed: 3,
        });
        let dir = std::env::temp_dir();
        let stamp = format!(
            "{}-{:?}-{tag}",
            std::process::id(),
            std::thread::current().id()
        );
        let artifact = dir.join(format!("holo-stream-{stamp}.holoart"));
        let log = dir.join(format!("holo-stream-{stamp}.dlog"));
        std::fs::remove_file(&log).ok();
        model.save(&artifact).expect("save artifact");
        (artifact, log)
    }

    fn cleanup(paths: &[&Path]) {
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    fn some_rows(n: usize, tag: usize) -> Vec<Vec<String>> {
        (0..n)
            .map(|i| vec![format!("606{:02}", (tag + i) % 100), "Chicago".to_string()])
            .collect()
    }

    #[test]
    fn ingest_advances_epoch_and_scores_see_it() {
        let (artifact, log) = fit_artifact("ingest");
        let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        assert_eq!(live.epoch(), 0);

        // A probe whose zip is unseen at fit time.
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        b.push_row(&["60699", "Chicago"]);
        let probe = b.build();
        let cells = vec![CellId::new(0, 0)];
        let before = live.score_batch(&probe, &cells).unwrap()[0];

        let report = live
            .ingest_rows(vec![vec!["60699".into(), "Chicago".into()]; 10])
            .unwrap();
        assert_eq!(report.appended, 10);
        assert_eq!(report.epoch, 10);
        assert_eq!(live.epoch(), 10);
        assert_eq!(live.rows_ingested(), 10);

        let after = live.score_batch(&probe, &cells).unwrap()[0];
        assert_ne!(
            before.to_bits(),
            after.to_bits(),
            "ingested evidence must reach scoring"
        );
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn ingest_validates_arity_and_rejects_empty_schema_mismatch() {
        let (artifact, log) = fit_artifact("arity");
        let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        assert!(live.ingest_rows(vec![vec!["only-one".into()]]).is_err());
        assert_eq!(live.epoch(), 0, "failed ingest must not advance the epoch");
        let r = live.ingest_rows(Vec::new()).unwrap();
        assert_eq!(r.appended, 0);
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn crash_recovery_replays_the_log_tail() {
        let (artifact, log) = fit_artifact("recover");
        let probe_scores = {
            let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
            live.ingest_rows(some_rows(7, 40)).unwrap();
            let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
            b.push_row(&["60641", "Chicago"]);
            let probe = b.build();
            live.score_batch(&probe, &[CellId::new(0, 0), CellId::new(0, 1)])
                .unwrap()
            // live dropped here — simulating a crash (nothing saved).
        };
        let revived = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        assert_eq!(revived.epoch(), 7, "log tail must replay");
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        b.push_row(&["60641", "Chicago"]);
        let probe = b.build();
        let scores = revived
            .score_batch(&probe, &[CellId::new(0, 0), CellId::new(0, 1)])
            .unwrap();
        assert_eq!(
            scores.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            probe_scores.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "recovered state must score bitwise-identically"
        );
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn drift_rises_on_violating_traffic_and_refit_resets_it() {
        let (dirty, truth) = world();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 12;
        let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
        let dcs = holo_constraints::parse_constraints("Zip -> City", dirty.schema())
            .expect("parse constraints");
        let model = HoloDetect::new(cfg).fit_model(&FitContext {
            dirty: &dirty,
            train: &train,
            sampling: None,
            constraints: &dcs,
            seed: 3,
        });
        let dir = std::env::temp_dir();
        let stamp = format!(
            "{}-{:?}-drift",
            std::process::id(),
            std::thread::current().id()
        );
        let artifact = dir.join(format!("holo-stream-{stamp}.holoart"));
        let log = dir.join(format!("holo-stream-{stamp}.dlog"));
        std::fs::remove_file(&log).ok();
        model.save(&artifact).unwrap();

        let live = LiveModel::open(
            &artifact,
            &log,
            StreamConfig {
                drift_threshold: 0.2,
                min_rows_between_refits: 8,
                baseline_sample_rows: 64,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        assert!(!live.should_refit());

        // Every ingested row breaks the FD against the reference.
        let bad: Vec<Vec<String>> = (0..12)
            .map(|i| vec!["60612".to_string(), format!("Springfield{i}")])
            .collect();
        let report = live.ingest_rows(bad).unwrap();
        assert!(
            report.drift > 0.2,
            "uniformly violating traffic must show as drift (got {})",
            report.drift
        );
        assert!(live.should_refit());

        let generation = live.refit_now().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(live.refits_total(), 1);
        assert_eq!(live.epoch(), 12, "refit must not lose the ingested epochs");
        let after = live.drift_report();
        assert_eq!(after.rows_since_refit, 0, "refit re-anchors the window");
        assert!(!live.should_refit());
        // The log was compacted: reopening replays nothing.
        drop(live);
        let revived = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        assert_eq!(revived.epoch(), 12);
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn scoring_stays_available_and_parity_correct_during_refit() {
        let (artifact, log) = fit_artifact("avail");
        let live =
            std::sync::Arc::new(LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap());
        live.ingest_rows(some_rows(6, 10)).unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            // Scorers hammer the model while a refit runs.
            for _ in 0..3 {
                let live = std::sync::Arc::clone(&live);
                let stop = &stop;
                s.spawn(move || {
                    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
                    b.push_row(&["60616", "Chicago"]);
                    let probe = b.build();
                    let cells: Vec<CellId> = probe.cell_ids().collect();
                    while !stop.load(Ordering::Relaxed) {
                        let scores = live
                            .score_batch(&probe, &cells)
                            .expect("score during refit");
                        assert_eq!(scores.len(), 2);
                    }
                });
            }
            // Ingest keeps landing mid-refit too.
            {
                let live = std::sync::Arc::clone(&live);
                let stop = &stop;
                s.spawn(move || {
                    let mut tag = 50;
                    while !stop.load(Ordering::Relaxed) {
                        live.ingest_rows(some_rows(2, tag))
                            .expect("ingest during refit");
                        tag += 2;
                    }
                });
            }
            live.refit_now().expect("refit");
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(live.generation(), 1);
        // Mid-refit ingests survived the hot swap (tail replay).
        assert_eq!(live.epoch(), live.rows_ingested());
        // And the maintained state still equals a from-scratch rebuild.
        let reference = {
            let st = live.state.read().unwrap();
            st.model.artifact().unwrap().reference().clone()
        };
        // The refit stamped the artifact with its epoch; the wrapper
        // reader recovers both, and the log tail completes the state.
        let (mut baseline, file_epoch) = read_epoch_artifact(&artifact).unwrap();
        {
            let log = live.log.lock().unwrap();
            assert_eq!(file_epoch, Some(log.base_epoch()));
            for op in log.ops() {
                baseline.apply_delta(op).unwrap();
            }
        }
        let cells: Vec<CellId> = reference.cell_ids().take(30).collect();
        let a = live.score_batch(&reference, &cells).unwrap();
        let b = baseline.score_batch(&reference, &cells).unwrap();
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "post-refit live state must equal artifact ⊕ log"
        );
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn crash_between_artifact_rename_and_compaction_heals_on_open() {
        // The refit crash window: the epoch-stamped artifact reached
        // disk, the log compaction did not. Opening must drop the
        // already-baked ops instead of double-replaying them.
        let (artifact, log) = fit_artifact("crashwin");
        let probe_scores = {
            let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
            live.ingest_rows(some_rows(5, 70)).unwrap();
            // Persist an epoch-stamped snapshot of the current state,
            // deliberately skipping the compaction (simulated crash).
            let st = live.state.read().unwrap();
            let mut buf = Vec::new();
            st.model.save_to(&mut buf).unwrap();
            let snap = FittedHoloDetect::load_from(&mut std::io::Cursor::new(buf)).unwrap();
            write_epoch_artifact(&artifact, &snap, st.epoch).unwrap();
            drop(st);
            let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
            b.push_row(&["60671", "Chicago"]);
            let probe = b.build();
            live.score_batch(&probe, &[CellId::new(0, 0), CellId::new(0, 1)])
                .unwrap()
        };
        let revived = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        assert_eq!(revived.epoch(), 5, "healed state must land on the epoch");
        assert_eq!(
            revived.log.lock().unwrap().base_epoch(),
            5,
            "open must finish the interrupted compaction"
        );
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        b.push_row(&["60671", "Chicago"]);
        let probe = b.build();
        let scores = revived
            .score_batch(&probe, &[CellId::new(0, 0), CellId::new(0, 1)])
            .unwrap();
        assert_eq!(
            scores.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            probe_scores.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "healed state must score bitwise-identically (no double replay)"
        );
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn log_compacted_past_the_artifact_is_a_loud_error() {
        // The converse corruption — an old artifact with a log whose
        // horizon moved beyond it — is unrecoverable and must not be
        // papered over.
        let (artifact, log) = fit_artifact("pastlog");
        {
            let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
            live.ingest_rows(some_rows(4, 80)).unwrap();
            live.log.lock().unwrap().compact_through(3).unwrap();
            // The plain (unstamped) artifact on disk claims horizon 3
            // now, which is fine — so recreate the mismatch explicitly
            // with a stamp that predates it.
            let st = live.state.read().unwrap();
            let mut buf = Vec::new();
            st.model.save_to(&mut buf).unwrap();
            let snap = FittedHoloDetect::load_from(&mut std::io::Cursor::new(buf)).unwrap();
            write_epoch_artifact(&artifact, &snap, 1).unwrap();
        }
        assert!(matches!(
            LiveModel::open(&artifact, &log, StreamConfig::default()),
            Err(ModelError::Format(_))
        ));
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn labels_probe_the_model_and_adaptive_refit_drains_them() {
        let (artifact, log) = fit_artifact("labels");
        let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        // Swap-drifted rows: zips and cities crossed, all in-domain.
        let drifted: Vec<Vec<String>> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    vec!["60612".into(), "Madison".into()]
                } else {
                    vec!["53703".into(), "Chicago".into()]
                }
            })
            .collect();
        live.ingest_rows(drifted).unwrap();
        // The reference had 50 rows; label 4 of the appended ones with
        // their clean versions (one cell of each is the swap error).
        let labels: Vec<RowLabel> = (0..4)
            .map(|i| RowLabel {
                row: 50 + i,
                clean: if i % 2 == 0 {
                    vec!["60612".into(), "Chicago".into()]
                } else {
                    vec!["53703".into(), "Madison".into()]
                },
            })
            .collect();
        assert_eq!(live.add_labels(labels).unwrap(), 4);
        assert_eq!(live.labels_pending(), 4);
        assert_eq!(live.labels_received(), 4);
        // Every labeled cell became a probe spot check.
        assert_eq!(live.drift_report().probe_checked, 8);
        // Bad labels are typed refusals that leave the buffer alone.
        assert!(matches!(
            live.add_labels(vec![RowLabel {
                row: 9999,
                clean: vec!["a".into(), "b".into()],
            }]),
            Err(ModelError::CellOutOfBounds { .. })
        ));
        assert!(live
            .add_labels(vec![RowLabel {
                row: 0,
                clean: vec!["one".into()],
            }])
            .is_err());
        assert_eq!(live.labels_pending(), 4);
        // The adaptive refit consumes the labels and drains the buffer
        // only after succeeding; the re-anchor forgets the old model's
        // probe checks.
        live.refit_now().unwrap();
        assert_eq!(live.labels_pending(), 0);
        assert_eq!(live.labels_consumed(), 4);
        assert_eq!(live.drift_report().probe_checked, 0);
        assert!(live.refits_total() >= 1);
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn degenerate_artifacts_cannot_go_live() {
        // A minimal valid degenerate artifact, written by hand.
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(b"HOLOARTF");
        holo_data::binio::write_u32(&mut buf, 1).unwrap();
        holo_data::binio::write_str(&mut buf, "AUG").unwrap();
        holo_data::binio::write_bool(&mut buf, false).unwrap();
        let dir = std::env::temp_dir();
        let stamp = format!("{}-deg", std::process::id());
        let artifact = dir.join(format!("holo-stream-{stamp}.holoart"));
        std::fs::write(&artifact, &buf).unwrap();
        let log = dir.join(format!("holo-stream-{stamp}.dlog"));
        std::fs::remove_file(&log).ok();
        assert!(matches!(
            LiveModel::open(&artifact, &log, StreamConfig::default()),
            Err(ModelError::Degenerate { .. })
        ));
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn embed_refresh_runs_in_refit_and_lands_on_the_timeline() {
        let (artifact, log) = fit_artifact("embedrefresh");
        let live = LiveModel::open(
            &artifact,
            &log,
            StreamConfig {
                embed_refresh_epochs: 2,
                refit_threads: Some(2),
                ..StreamConfig::default()
            },
        )
        .unwrap();
        // New-vocabulary traffic: tokens the fit-time embeddings never
        // saw, exactly what the incremental refresh exists to absorb.
        let delta: Vec<Vec<String>> = (0..6)
            .map(|_| vec!["48201".to_string(), "Detroit".to_string()])
            .collect();
        live.ingest_rows(delta).unwrap();
        live.refit_now().unwrap();
        let tl = live.refit_timelines(1).pop().unwrap();
        assert!(
            tl.phase_micros("embed-refresh").is_some_and(|us| us >= 1),
            "refresh ran over delta rows, its phase must be attributed"
        );
        cleanup(&[&artifact, &log]);
    }

    #[test]
    fn embed_refresh_phase_absent_when_disabled_or_no_delta() {
        // Enabled but nothing appended since the last compaction: the
        // refresh has no corpus, so the phase must not appear.
        let (artifact, log) = fit_artifact("embednodelta");
        let live = LiveModel::open(
            &artifact,
            &log,
            StreamConfig {
                embed_refresh_epochs: 2,
                ..StreamConfig::default()
            },
        )
        .unwrap();
        live.refit_to_disk().unwrap();
        let tl = live.refit_timelines(1).pop().unwrap();
        assert_eq!(tl.phase_micros("embed-refresh"), None);
        drop(live);
        std::fs::remove_file(&log).ok();

        // Disabled (the default): delta rows alone must not trigger it.
        let live = LiveModel::open(&artifact, &log, StreamConfig::default()).unwrap();
        live.ingest_rows(some_rows(4, 90)).unwrap();
        live.refit_to_disk().unwrap();
        let tl = live.refit_timelines(1).pop().unwrap();
        assert_eq!(tl.phase_micros("embed-refresh"), None);
        cleanup(&[&artifact, &log]);
    }
}
