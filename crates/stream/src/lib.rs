//! # holo-stream
//!
//! Streaming ingest with incremental model maintenance and
//! drift-triggered refit: the layer that turns the frozen
//! fit → save → serve lifecycle into a living one.
//!
//! A served HoloDetect artifact scores against the reference dataset it
//! was fitted on — but production reference data is never frozen: rows
//! arrive continuously and error distributions drift. Refitting per
//! batch is economically absurd (artifact load is ~350× cheaper than a
//! refit per the bench notes, and a refit is *far* more expensive than
//! a load), so this crate keeps a served model current three ways:
//!
//! * **Incremental maintenance** — every ingested row becomes a
//!   [`holo_data::DeltaOp`] in a durable [`holo_data::DeltaLog`] and is
//!   applied to the fitted state through
//!   `FittedHoloDetect::apply_delta`, which maintains the owned
//!   reference copy, the violation indexes, and every count-based
//!   representation model with the repo's established parity bar:
//!   scoring after any delta sequence is **bitwise-identical** to a
//!   from-scratch rebuild of the count-based state at the same epoch.
//! * **Drift monitoring** — [`drift::DriftMonitor`] tracks five
//!   signals of ingested rows against a baseline anchored at the last
//!   (re)fit: the violation rate and mean error score (first moments),
//!   per-attribute PSI/KS score-shape statistics from `holo-adapt`
//!   (which catch the quiet in-domain drift the first two miss), and a
//!   labeled spot-check probe pool. Which signals fired is part of the
//!   report ([`drift::DriftReport`], [`drift::SignalStat`]).
//! * **Background refit** — [`scheduler::RefitScheduler`] watches the
//!   drift signals off the hot path and, past their thresholds, refits
//!   on a snapshot (classifier + calibration + threshold re-learned
//!   over the maintained representation), persists the result, and
//!   hot-swaps it into serving through the caller's swap hook
//!   (`ModelRegistry::reload` in holo-serve) — scoring never blocks on
//!   a refit. When operator labels were posted
//!   ([`live::LiveModel::add_labels`]), the refit takes the *adaptive*
//!   path: `holo_adapt::AdaptiveRefit` learns the drifted error channel
//!   from ≤ `refit_label_budget` labels, amplifies it by augmentation,
//!   and extends the training set — recovering quality a label-free
//!   retrain cannot.
//!
//! [`live::LiveModel`] is the concurrency boundary tying the three
//! together: scoring takes a read lock, ingest a brief write lock, and
//! the refit's expensive training runs on a snapshot outside every
//! lock. The durable invariant is `artifact ⊕ delta-log = state`: the
//! on-disk artifact always corresponds to the log's compaction horizon,
//! so a crashed process reopens the artifact, replays the log tail, and
//! resumes at the exact epoch it died at.
//!
//! Every maintenance path is wall-clock attributed through
//! `holo-trace`: [`live::IngestReport`] carries per-stage ingest
//! timings (log-append / apply-delta / drift-update), and each refit
//! records a [`holo_trace::RefitTimeline`] — snapshot, the adaptive
//! phases, retrain, persist, install — retained in a bounded ring
//! ([`live::LiveModel::refit_timelines`]) that holo-serve pages as
//! `GET /v1/models/{name}/refits`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod drift;
pub mod live;
pub mod scheduler;

pub use drift::{DriftMonitor, DriftReport, DriftThresholds, SignalStat};
pub use holo_adapt::{DriftSignal, RowLabel};
pub use holo_trace::{RefitPhase, RefitTimeline};
pub use live::{IngestReport, LiveModel, StreamConfig};
pub use scheduler::{RefitScheduler, RefitTarget};
