//! # holo-stream
//!
//! Streaming ingest with incremental model maintenance and
//! drift-triggered refit: the layer that turns the frozen
//! fit → save → serve lifecycle into a living one.
//!
//! A served HoloDetect artifact scores against the reference dataset it
//! was fitted on — but production reference data is never frozen: rows
//! arrive continuously and error distributions drift. Refitting per
//! batch is economically absurd (artifact load is ~350× cheaper than a
//! refit per the bench notes, and a refit is *far* more expensive than
//! a load), so this crate keeps a served model current three ways:
//!
//! * **Incremental maintenance** — every ingested row becomes a
//!   [`holo_data::DeltaOp`] in a durable [`holo_data::DeltaLog`] and is
//!   applied to the fitted state through
//!   `FittedHoloDetect::apply_delta`, which maintains the owned
//!   reference copy, the violation indexes, and every count-based
//!   representation model with the repo's established parity bar:
//!   scoring after any delta sequence is **bitwise-identical** to a
//!   from-scratch rebuild of the count-based state at the same epoch.
//! * **Drift monitoring** — [`drift::DriftMonitor`] tracks the
//!   violation rate and mean error score of ingested rows against a
//!   baseline anchored at the last (re)fit; the gap between them is the
//!   drift signal ([`drift::DriftReport`]).
//! * **Background refit** — [`scheduler::RefitScheduler`] watches the
//!   drift signal off the hot path and, past a configurable threshold,
//!   runs `refit_with` on a snapshot (classifier + calibration +
//!   threshold re-learned over the maintained representation), persists
//!   the result, and hot-swaps it into serving through the caller's
//!   swap hook (`ModelRegistry::reload` in holo-serve) — scoring never
//!   blocks on a refit.
//!
//! [`live::LiveModel`] is the concurrency boundary tying the three
//! together: scoring takes a read lock, ingest a brief write lock, and
//! the refit's expensive training runs on a snapshot outside every
//! lock. The durable invariant is `artifact ⊕ delta-log = state`: the
//! on-disk artifact always corresponds to the log's compaction horizon,
//! so a crashed process reopens the artifact, replays the log tail, and
//! resumes at the exact epoch it died at.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod drift;
pub mod live;
pub mod scheduler;

pub use drift::{DriftMonitor, DriftReport};
pub use live::{IngestReport, LiveModel, StreamConfig};
pub use scheduler::{RefitScheduler, RefitTarget};
