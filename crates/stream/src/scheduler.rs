//! The background refit scheduler.
//!
//! One thread, many live models: each tick it asks every target
//! [`LiveModel::should_refit`]; past the drift threshold it runs
//! [`LiveModel::refit_to_disk`] (the expensive retrain, off every
//! serving lock) and then fires the target's swap hook — in holo-serve
//! that hook is `ModelRegistry::reload`, so the refitted artifact
//! enters serving through the exact generation-bumped hot-swap path a
//! manual reload uses, and scoring never blocks. When operator labels
//! are buffered on the model, the refit it triggers is the *adaptive*
//! one: `holo_adapt::AdaptiveRefit` turns those labels into learned
//! channel + amplified training examples before retraining.
//!
//! A refit failure (degenerate snapshot, disk trouble) is recorded and
//! retried on a later tick; it never kills the scheduler thread.
//!
//! The thread books its duty cycle into the `"refit-scheduler"`
//! [`holo_prof::PoolStats`] slot: tick bodies (polling + any refits)
//! count as busy, the inter-tick sleep as idle. A busy ratio creeping
//! toward 1.0 means refits are saturating the single scheduler thread.

use crate::live::LiveModel;
use holo_prof::{PoolStats, Stopwatch};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Saturating counter increment — the error counter must peg at
/// `u64::MAX`, never wrap back to zero and erase a failure history.
fn sat_add(counter: &AtomicU64, v: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_add(v))
    });
}

/// The swap hook fired after a successful refit-to-disk. Returns a
/// human-readable error on failure (retried next tick).
pub type SwapHook = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

/// One model under scheduler care.
pub struct RefitTarget {
    /// The live model to watch.
    pub live: Arc<LiveModel>,
    /// Hot-swap hook — `ModelRegistry::reload` when serving, or
    /// [`LiveModel::refit_now`]-style install when standalone.
    pub swap: SwapHook,
}

impl RefitTarget {
    /// A standalone target: the swap hook reloads the artifact file and
    /// installs it directly on the live model (no registry involved).
    pub fn standalone(live: Arc<LiveModel>) -> Self {
        let swap: SwapHook = {
            let live = Arc::clone(&live);
            Arc::new(move || live.reload_install().map(|_| ()).map_err(|e| e.to_string()))
        };
        RefitTarget { live, swap }
    }
}

/// Handle to the background thread. Dropping (or calling
/// [`RefitScheduler::shutdown`]) stops it and joins.
pub struct RefitScheduler {
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl RefitScheduler {
    /// Spawn the scheduler polling `targets` every `interval`.
    pub fn spawn(targets: Vec<RefitTarget>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_errors = Arc::clone(&errors);
        let handle = std::thread::Builder::new()
            .name("holo-stream-refit".into())
            .spawn(move || {
                let pool = PoolStats::register("refit-scheduler");
                while !thread_stop.load(Ordering::Relaxed) {
                    let tick = Stopwatch::start();
                    for target in &targets {
                        if thread_stop.load(Ordering::Relaxed) {
                            pool.record_busy(tick.elapsed_micros());
                            return;
                        }
                        if !target.live.should_refit() {
                            continue;
                        }
                        // Isolate each refit attempt: a panic inside
                        // the retrain or the swap hook is a failed
                        // attempt to retry next tick, never a dead
                        // scheduler thread.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            target
                                .live
                                .refit_to_disk_as("drift")
                                .map_err(|e| e.to_string())
                                .and_then(|_| (target.swap)())
                        }))
                        .unwrap_or_else(|_| Err("refit panicked".into()));
                        if outcome.is_err() {
                            sat_add(&thread_errors, 1);
                        }
                    }
                    pool.record_busy(tick.elapsed_micros());
                    // Sleep in short slices so shutdown is prompt even
                    // with a long polling interval.
                    let idle = Stopwatch::start();
                    let mut left = interval;
                    while !left.is_zero() && !thread_stop.load(Ordering::Relaxed) {
                        let nap = left.min(Duration::from_millis(25));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                    pool.record_idle(idle.elapsed_micros());
                }
            })
            .expect("spawn refit scheduler");
        RefitScheduler {
            stop,
            errors,
            handle: Some(handle),
        }
    }

    /// Refit attempts that failed (and will be retried).
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Stop the thread and join it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RefitScheduler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::StreamConfig;
    use holo_data::{DatasetBuilder, GroundTruth, Schema};
    use holo_eval::FitContext;
    use holodetect::{HoloDetect, HoloDetectConfig};
    use std::path::PathBuf;

    fn live_with_constraints(tag: &str) -> (Arc<LiveModel>, PathBuf, PathBuf) {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..25 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 12;
        let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
        let dcs = holo_constraints::parse_constraints("Zip -> City", dirty.schema()).unwrap();
        let model = HoloDetect::new(cfg).fit_model(&FitContext {
            dirty: &dirty,
            train: &train,
            sampling: None,
            constraints: &dcs,
            seed: 3,
        });
        let dir = std::env::temp_dir();
        let stamp = format!(
            "{}-{:?}-{tag}",
            std::process::id(),
            std::thread::current().id()
        );
        let artifact = dir.join(format!("holo-sched-{stamp}.holoart"));
        let log = dir.join(format!("holo-sched-{stamp}.dlog"));
        std::fs::remove_file(&log).ok();
        model.save(&artifact).unwrap();
        let live = Arc::new(
            LiveModel::open(
                &artifact,
                &log,
                StreamConfig {
                    drift_threshold: 0.2,
                    min_rows_between_refits: 8,
                    baseline_sample_rows: 64,
                    ..StreamConfig::default()
                },
            )
            .unwrap(),
        );
        (live, artifact, log)
    }

    #[test]
    fn scheduler_refits_on_drift_and_is_quiet_otherwise() {
        let (live, artifact, log) = live_with_constraints("auto");
        let sched = RefitScheduler::spawn(
            vec![RefitTarget::standalone(Arc::clone(&live))],
            Duration::from_millis(10),
        );

        // Quiet traffic: no refit.
        live.ingest_rows(vec![vec!["60612".into(), "Chicago".into()]; 4])
            .unwrap();
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(live.refits_total(), 0, "no drift, no refit");

        // Uniformly FD-violating traffic: drift crosses the threshold
        // and the scheduler refits + hot-swaps in the background. (The
        // batch is large enough that the 4 quiet rows above cannot
        // dilute the score-shift signal below the threshold.)
        let bad: Vec<Vec<String>> = (0..28)
            .map(|i| vec!["60612".to_string(), format!("Springfield{i}")])
            .collect();
        let report = live.ingest_rows(bad).unwrap();
        assert!(
            report.drift > 0.2,
            "bad traffic must register as drift (got {})",
            report.drift
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while live.generation() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(live.generation() >= 1, "scheduler never hot-swapped");
        assert!(live.refits_total() >= 1);
        assert_eq!(live.epoch(), 32, "refit must preserve every epoch");
        assert!(!live.should_refit(), "baseline re-anchored after refit");
        sched.shutdown();
        for p in [&artifact, &log] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn failed_swaps_are_counted_and_retried_not_fatal() {
        let (live, artifact, log) = live_with_constraints("fail");
        let swap: SwapHook = Arc::new(|| Err("swap refused".into()));
        let sched = RefitScheduler::spawn(
            vec![RefitTarget {
                live: Arc::clone(&live),
                swap,
            }],
            Duration::from_millis(10),
        );
        let bad: Vec<Vec<String>> = (0..12)
            .map(|i| vec!["60612".to_string(), format!("Springfield{i}")])
            .collect();
        live.ingest_rows(bad).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while sched.error_count() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(sched.error_count() >= 1, "failure must be recorded");
        // The scheduler thread survives failures; shutdown still joins.
        sched.shutdown();
        assert_eq!(live.generation(), 0, "failed swap installs nothing");
        for p in [&artifact, &log] {
            std::fs::remove_file(p).ok();
        }
    }
}
