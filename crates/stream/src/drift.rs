//! Drift detection between epochs.
//!
//! Five model-grounded signals, all measured on the rows ingested since
//! the last (re)fit and compared against a baseline anchored at that
//! fit:
//!
//! * **violation rate** — the fraction of ingested tuples conflicting
//!   with at least one denial constraint. A structural signal: if new
//!   traffic suddenly violates the constraints far more (or less) than
//!   the fit-time reference did, the reference statistics the detector
//!   scores against no longer describe the stream.
//! * **score mean** — the mean calibrated error probability the model
//!   itself assigns to ingested cells. A first-moment distributional
//!   signal: a detector whose average suspicion of fresh traffic
//!   departs from its fit-time self-assessment is extrapolating.
//! * **PSI** and **KS** — per-attribute score-*shape* statistics from
//!   `holo-adapt`: fixed-bin histograms of the same calibrated scores,
//!   compared via the Population Stability Index and the
//!   Kolmogorov–Smirnov statistic. These catch the quiet drift the
//!   first two miss — census-style in-domain swaps move almost no mean
//!   mass but dissolve the confident bimodal score shape.
//! * **probe** — the disagreement rate between operator labels and the
//!   model's own thresholded predictions over a bounded ring of recent
//!   spot checks (every label posted to a live model doubles as one).
//!
//! Which signals crossed their thresholds is a list of
//! [`DriftSignal`]s in the report — a refit decision is a diagnosis,
//! never a bare bool. The legacy `drift` scalar (the larger of the two
//! first-moment gaps) is still reported for continuity. This extends
//! the adaptation-gap framing of AED (Yeh et al., 2024): few-shot
//! detectors degrade quietly under distribution shift, so the monitor
//! watches the quantities the model's own machinery already exposes.

use holo_adapt::{ks, psi, DriftSignal, ProbePool, ScoreHistogram, DEFAULT_SCORE_BINS};
use holo_eval::ModelError;

/// Per-signal firing thresholds (carried by the monitor so a report is
/// self-contained).
#[derive(Debug, Clone)]
pub struct DriftThresholds {
    /// Threshold on the violation-rate / score-mean absolute gaps (both
    /// live in `[0, 1]`, so one value governs them).
    pub gap: f64,
    /// Threshold on the per-attribute PSI maximum (0.25 is the
    /// conventional "significant shift" PSI cut).
    pub psi: f64,
    /// Threshold on the per-attribute KS maximum.
    pub ks: f64,
    /// Threshold on the probe disagreement rate.
    pub probe: f64,
    /// Probe checks required before the probe signal may fire (a single
    /// disagreeing label must not trigger a retrain).
    pub min_probe_labels: u64,
    /// Score histogram bins.
    pub score_bins: usize,
}

impl Default for DriftThresholds {
    fn default() -> Self {
        DriftThresholds {
            gap: 0.2,
            psi: 0.25,
            ks: 0.2,
            probe: 0.3,
            min_probe_labels: 8,
            score_bins: DEFAULT_SCORE_BINS,
        }
    }
}

/// Running drift state for one live model.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    /// Violating-tuple fraction of the reference at the last (re)fit.
    baseline_violation_rate: f64,
    /// Mean error score over a reference sample at the last (re)fit.
    baseline_score_mean: f64,
    /// Per-attribute score histograms of the reference sample at the
    /// last (re)fit.
    baseline: Vec<ScoreHistogram>,
    /// Per-attribute score histograms of the rows ingested since.
    recent: Vec<ScoreHistogram>,
    /// Labeled spot checks against the current model.
    probes: ProbePool,
    thresholds: DriftThresholds,
    /// Rows ingested since the last (re)fit.
    rows: u64,
    /// Of those, rows violating ≥ 1 constraint on arrival.
    violating: u64,
    /// Sum / count of scores over ingested cells.
    score_sum: f64,
    cells: u64,
}

/// One signal's point-in-time value against its threshold — the row
/// shape of [`DriftMonitor::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SignalStat {
    /// Which signal.
    pub signal: DriftSignal,
    /// Its current value (gap, max PSI, max KS, or disagreement rate).
    pub value: f64,
    /// The threshold it fires past.
    pub threshold: f64,
    /// Whether it currently fires.
    pub fired: bool,
}

/// A point-in-time view of the drift state (the `GET .../drift` body).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Violating-tuple fraction of the reference at the last (re)fit.
    pub baseline_violation_rate: f64,
    /// Violating-tuple fraction of rows ingested since then.
    pub recent_violation_rate: f64,
    /// Mean cell score of the reference sample at the last (re)fit.
    pub baseline_score_mean: f64,
    /// Mean cell score of rows ingested since then.
    pub recent_score_mean: f64,
    /// Rows ingested since the last (re)fit.
    pub rows_since_refit: u64,
    /// `max(|Δ violation rate|, |Δ score mean|)`, `0` before any ingest
    /// — the legacy first-moment scalar.
    pub drift: f64,
    /// Per-attribute PSI between the baseline and recent score
    /// histograms (index = attribute position).
    pub psi: Vec<f64>,
    /// Per-attribute KS statistics, same indexing.
    pub ks: Vec<f64>,
    /// Labeled spot checks in the probe window.
    pub probe_checked: u64,
    /// Their disagreement rate (`0` when empty).
    pub probe_disagreement: f64,
    /// Every signal currently past its threshold, in
    /// [`DriftSignal::ALL`] order.
    pub fired: Vec<DriftSignal>,
}

impl DriftReport {
    /// The largest per-attribute PSI (`0` with no attributes).
    pub fn psi_max(&self) -> f64 {
        self.psi.iter().copied().fold(0.0, f64::max)
    }

    /// The largest per-attribute KS statistic (`0` with no attributes).
    pub fn ks_max(&self) -> f64 {
        self.ks.iter().copied().fold(0.0, f64::max)
    }
}

impl DriftMonitor {
    /// A monitor anchored at the given scalar baseline, tracking
    /// `n_attrs` per-attribute score histograms. The baseline
    /// histograms start empty — feed the fit-time sample through
    /// [`DriftMonitor::record_baseline_scores`] to arm PSI/KS (an
    /// unarmed monitor reports 0 for both: no evidence, no drift).
    pub fn new(
        baseline_violation_rate: f64,
        baseline_score_mean: f64,
        n_attrs: usize,
        thresholds: DriftThresholds,
    ) -> Self {
        let bins = thresholds.score_bins;
        DriftMonitor {
            baseline_violation_rate,
            baseline_score_mean,
            baseline: vec![ScoreHistogram::new(bins); n_attrs],
            recent: vec![ScoreHistogram::new(bins); n_attrs],
            probes: ProbePool::default(),
            thresholds,
            rows: 0,
            violating: 0,
            score_sum: 0.0,
            cells: 0,
        }
    }

    /// The thresholds this monitor fires against.
    pub fn thresholds(&self) -> &DriftThresholds {
        &self.thresholds
    }

    /// Arm the baseline histograms from the fit-time reference sample.
    /// `scores` must be in row-major `(tuple, attr)` order over whole
    /// tuples, so score `i` belongs to attribute `i % n_attrs` — the
    /// same layout ingest uses.
    ///
    /// # Errors
    /// [`ModelError::Format`] on a NaN score (model corruption).
    pub fn record_baseline_scores(&mut self, scores: &[f64]) -> Result<(), ModelError> {
        let na = self.baseline.len().max(1);
        for (i, &s) in scores.iter().enumerate() {
            if let Some(h) = self.baseline.get_mut(i % na) {
                h.record(s)?;
            }
        }
        Ok(())
    }

    /// Fold one ingested batch into the recent window. `scores` are the
    /// new rows' cell scores in row-major `(tuple, attr)` order, so
    /// score `i` belongs to attribute `i % n_attrs`.
    ///
    /// # Errors
    /// [`ModelError::Format`] on a NaN score — a NaN calibrated
    /// probability means the model is corrupt, and folding it into the
    /// statistics would silently poison every later drift decision.
    pub fn record_batch(
        &mut self,
        rows: u64,
        violating: u64,
        scores: &[f64],
    ) -> Result<(), ModelError> {
        let na = self.recent.len().max(1);
        let mut sum = 0.0;
        for (i, &s) in scores.iter().enumerate() {
            if let Some(h) = self.recent.get_mut(i % na) {
                h.record(s)?;
            }
            sum += s;
        }
        self.rows += rows;
        self.violating += violating;
        self.score_sum += sum;
        self.cells += scores.len() as u64;
        Ok(())
    }

    /// Record one labeled spot check: the model predicted
    /// `predicted_error` for a cell an operator labeled `labeled_error`.
    pub fn record_probe(&mut self, predicted_error: bool, labeled_error: bool) {
        self.probes.record(predicted_error, labeled_error);
    }

    /// The probe pool, for bulk spot-checking
    /// (`holo_adapt::AdaptiveRefit::probe`).
    pub fn probes_mut(&mut self) -> &mut ProbePool {
        &mut self.probes
    }

    /// Re-anchor after a refit: the freshly fitted model's scalar
    /// statistics become the baseline and every window — recent
    /// histograms, probe ring, counters — restarts. The baseline
    /// histograms restart *empty*; re-arm them with
    /// [`DriftMonitor::record_baseline_scores`] (the live path rebuilds
    /// the whole monitor via `DriftMonitor::new_anchored` instead).
    pub fn reanchor(&mut self, baseline_violation_rate: f64, baseline_score_mean: f64) {
        let n_attrs = self.baseline.len();
        *self = DriftMonitor::new(
            baseline_violation_rate,
            baseline_score_mean,
            n_attrs,
            self.thresholds.clone(),
        );
    }

    /// The current report.
    pub fn report(&self) -> DriftReport {
        let recent_violation_rate = if self.rows == 0 {
            self.baseline_violation_rate
        } else {
            self.violating as f64 / self.rows as f64
        };
        let recent_score_mean = if self.cells == 0 {
            self.baseline_score_mean
        } else {
            self.score_sum / self.cells as f64
        };
        let (violation_gap, score_gap, drift) = if self.rows == 0 {
            (0.0, 0.0, 0.0)
        } else {
            let vg = (recent_violation_rate - self.baseline_violation_rate).abs();
            let sg = (recent_score_mean - self.baseline_score_mean).abs();
            (vg, sg, vg.max(sg))
        };
        // Both sides of every pair share a bin count by construction,
        // so the statistics cannot fail; 0.0 is the safe fallback.
        let psi_per_attr: Vec<f64> = self
            .baseline
            .iter()
            .zip(self.recent.iter())
            .map(|(b, r)| psi(b, r).unwrap_or(0.0))
            .collect();
        let ks_per_attr: Vec<f64> = self
            .baseline
            .iter()
            .zip(self.recent.iter())
            .map(|(b, r)| ks(b, r).unwrap_or(0.0))
            .collect();
        let probe_checked = self.probes.checked();
        let probe_disagreement = self.probes.disagreement();

        let t = &self.thresholds;
        let psi_max = psi_per_attr.iter().copied().fold(0.0, f64::max);
        let ks_max = ks_per_attr.iter().copied().fold(0.0, f64::max);
        let mut fired = Vec::new();
        if violation_gap > t.gap {
            fired.push(DriftSignal::ViolationRate);
        }
        if score_gap > t.gap {
            fired.push(DriftSignal::ScoreMean);
        }
        if psi_max > t.psi {
            fired.push(DriftSignal::Psi);
        }
        if ks_max > t.ks {
            fired.push(DriftSignal::Ks);
        }
        if probe_checked >= t.min_probe_labels && probe_disagreement > t.probe {
            fired.push(DriftSignal::Probe);
        }

        DriftReport {
            baseline_violation_rate: self.baseline_violation_rate,
            recent_violation_rate,
            baseline_score_mean: self.baseline_score_mean,
            recent_score_mean,
            rows_since_refit: self.rows,
            drift,
            psi: psi_per_attr,
            ks: ks_per_attr,
            probe_checked,
            probe_disagreement,
            fired,
        }
    }

    /// Every signal's current value against its threshold, in
    /// [`DriftSignal::ALL`] order — the diagnosis behind a
    /// `would_refit` decision, as `GET /drift` serves it.
    pub fn stats(&self) -> Vec<SignalStat> {
        let r = self.report();
        let t = &self.thresholds;
        let violation_gap = if r.rows_since_refit == 0 {
            0.0
        } else {
            (r.recent_violation_rate - r.baseline_violation_rate).abs()
        };
        let score_gap = if r.rows_since_refit == 0 {
            0.0
        } else {
            (r.recent_score_mean - r.baseline_score_mean).abs()
        };
        DriftSignal::ALL
            .iter()
            .map(|&signal| {
                let (value, threshold) = match signal {
                    DriftSignal::ViolationRate => (violation_gap, t.gap),
                    DriftSignal::ScoreMean => (score_gap, t.gap),
                    DriftSignal::Psi => (r.psi_max(), t.psi),
                    DriftSignal::Ks => (r.ks_max(), t.ks),
                    DriftSignal::Probe => (r.probe_disagreement, t.probe),
                };
                SignalStat {
                    signal,
                    value,
                    threshold,
                    fired: r.fired.contains(&signal),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(bvr: f64, bsm: f64) -> DriftMonitor {
        DriftMonitor::new(bvr, bsm, 2, DriftThresholds::default())
    }

    /// `n` rows of `n`×2 scores, row-major, alternating the two values.
    fn flat_scores(n: usize, a: f64, b: f64) -> Vec<f64> {
        (0..n).flat_map(|_| [a, b]).collect()
    }

    #[test]
    fn no_ingest_means_no_drift() {
        let m = monitor(0.1, 0.3);
        let r = m.report();
        assert_eq!(r.drift, 0.0);
        assert_eq!(r.rows_since_refit, 0);
        assert_eq!(r.recent_violation_rate, 0.1);
        assert_eq!(r.recent_score_mean, 0.3);
        assert!(r.fired.is_empty());
        assert!(m.stats().iter().all(|s| !s.fired));
    }

    #[test]
    fn drift_is_the_larger_gap() {
        let mut m = monitor(0.10, 0.20);
        // 8 of 10 rows violating (gap 0.7), scores mean 0.25 (gap 0.05).
        m.record_batch(10, 8, &flat_scores(20, 0.25, 0.25)).unwrap();
        let r = m.report();
        assert!((r.recent_violation_rate - 0.8).abs() < 1e-12);
        assert!((r.drift - 0.7).abs() < 1e-12, "drift {}", r.drift);
        assert!(r.fired.contains(&DriftSignal::ViolationRate));
        assert!(!r.fired.contains(&DriftSignal::ScoreMean));
        // Score-side dominance works too.
        let mut m = monitor(0.10, 0.20);
        m.record_batch(10, 1, &flat_scores(20, 0.9, 0.9)).unwrap();
        let r = m.report();
        assert!((r.drift - 0.7).abs() < 1e-12);
        assert!(r.fired.contains(&DriftSignal::ScoreMean));
    }

    #[test]
    fn batches_accumulate_and_reanchor_resets() {
        let mut m = monitor(0.0, 0.5);
        m.record_batch(5, 5, &flat_scores(5, 0.5, 0.5)).unwrap();
        m.record_batch(5, 0, &flat_scores(5, 0.5, 0.5)).unwrap();
        let r = m.report();
        assert_eq!(r.rows_since_refit, 10);
        assert!((r.recent_violation_rate - 0.5).abs() < 1e-12);
        m.reanchor(0.5, 0.5);
        let r = m.report();
        assert_eq!(r.drift, 0.0);
        assert_eq!(r.rows_since_refit, 0);
        assert_eq!(r.baseline_violation_rate, 0.5);
        assert!(r.fired.is_empty());
    }

    #[test]
    fn quiet_shape_drift_fires_psi_and_ks_not_the_means() {
        // The census signature: baseline scores confidently bimodal,
        // recent scores uncertain — with the *mean preserved*, so the
        // legacy signals stay quiet.
        let mut m = monitor(0.0, 0.5);
        // Arm the baseline: scores at the edges, mean 0.5.
        let base: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.05 } else { 0.95 })
            .collect();
        m.record_baseline_scores(&base).unwrap();
        // Recent: everything in the middle, mean still 0.5.
        let recent: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.45 } else { 0.55 })
            .collect();
        m.record_batch(100, 0, &recent).unwrap();
        let r = m.report();
        assert!(r.drift < 0.01, "legacy drift must stay quiet: {}", r.drift);
        assert!(r.psi_max() > 0.25, "psi_max {}", r.psi_max());
        assert!(r.ks_max() > 0.2, "ks_max {}", r.ks_max());
        assert!(r.fired.contains(&DriftSignal::Psi));
        assert!(r.fired.contains(&DriftSignal::Ks));
        assert!(!r.fired.contains(&DriftSignal::ScoreMean));
        assert!(!r.fired.contains(&DriftSignal::ViolationRate));
        // stats() names the same diagnosis.
        let stats = m.stats();
        assert_eq!(stats.len(), DriftSignal::ALL.len());
        for s in &stats {
            let expect = matches!(s.signal, DriftSignal::Psi | DriftSignal::Ks);
            assert_eq!(s.fired, expect, "{:?}: {s:?}", s.signal);
        }
    }

    #[test]
    fn unarmed_baseline_reports_zero_shape_drift() {
        let mut m = monitor(0.0, 0.5);
        m.record_batch(50, 0, &flat_scores(50, 0.9, 0.9)).unwrap();
        let r = m.report();
        assert_eq!(r.psi_max(), 0.0, "no baseline evidence, no PSI");
        assert_eq!(r.ks_max(), 0.0);
        assert!(!r.fired.contains(&DriftSignal::Psi));
    }

    #[test]
    fn probe_signal_needs_volume_then_fires() {
        let mut m = monitor(0.0, 0.5);
        // Disagreements below the volume floor stay quiet.
        for _ in 0..7 {
            m.record_probe(false, true);
        }
        assert!(!m.report().fired.contains(&DriftSignal::Probe));
        m.record_probe(false, true);
        let r = m.report();
        assert_eq!(r.probe_checked, 8);
        assert_eq!(r.probe_disagreement, 1.0);
        assert!(r.fired.contains(&DriftSignal::Probe));
        // Re-anchoring forgets the probes (they judged the old model).
        m.reanchor(0.0, 0.5);
        assert_eq!(m.report().probe_checked, 0);
    }

    #[test]
    fn nan_scores_are_hard_errors() {
        let mut m = monitor(0.0, 0.5);
        assert!(m.record_batch(1, 0, &[0.2, f64::NAN]).is_err());
        assert!(m.record_baseline_scores(&[f64::NAN]).is_err());
    }
}
