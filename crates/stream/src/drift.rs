//! Drift detection between epochs.
//!
//! Two cheap, model-grounded signals, both measured on the rows
//! ingested since the last (re)fit and compared against a baseline
//! anchored at that fit:
//!
//! * **violation rate** — the fraction of ingested tuples conflicting
//!   with at least one denial constraint. A structural signal: if new
//!   traffic suddenly violates the constraints far more (or less) than
//!   the fit-time reference did, the reference statistics the detector
//!   scores against no longer describe the stream.
//! * **score mean** — the mean calibrated error probability the model
//!   itself assigns to ingested cells. A distributional signal: a
//!   detector whose average suspicion of fresh traffic departs from its
//!   fit-time self-assessment is extrapolating.
//!
//! Drift is the larger of the two absolute gaps — both signals live in
//! `[0, 1]`, so one threshold governs them. This is deliberately the
//! adaptation-gap framing of AED (Yeh et al., 2024): few-shot detectors
//! degrade quietly under distribution shift, so the monitor watches the
//! two quantities the model's own machinery already exposes instead of
//! requiring labeled feedback.

/// Running drift state for one live model.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    /// Violating-tuple fraction of the reference at the last (re)fit.
    baseline_violation_rate: f64,
    /// Mean error score over a reference sample at the last (re)fit.
    baseline_score_mean: f64,
    /// Rows ingested since the last (re)fit.
    rows: u64,
    /// Of those, rows violating ≥ 1 constraint on arrival.
    violating: u64,
    /// Sum / count of scores over ingested cells.
    score_sum: f64,
    cells: u64,
}

/// A point-in-time view of the drift state (the `GET .../drift` body).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Violating-tuple fraction of the reference at the last (re)fit.
    pub baseline_violation_rate: f64,
    /// Violating-tuple fraction of rows ingested since then.
    pub recent_violation_rate: f64,
    /// Mean cell score of the reference sample at the last (re)fit.
    pub baseline_score_mean: f64,
    /// Mean cell score of rows ingested since then.
    pub recent_score_mean: f64,
    /// Rows ingested since the last (re)fit.
    pub rows_since_refit: u64,
    /// `max(|Δ violation rate|, |Δ score mean|)`, `0` before any ingest.
    pub drift: f64,
}

impl DriftMonitor {
    /// A monitor anchored at the given baseline.
    pub fn new(baseline_violation_rate: f64, baseline_score_mean: f64) -> Self {
        DriftMonitor {
            baseline_violation_rate,
            baseline_score_mean,
            rows: 0,
            violating: 0,
            score_sum: 0.0,
            cells: 0,
        }
    }

    /// Fold one ingested batch into the recent window.
    pub fn record_batch(&mut self, rows: u64, violating: u64, score_sum: f64, cells: u64) {
        self.rows += rows;
        self.violating += violating;
        self.score_sum += score_sum;
        self.cells += cells;
    }

    /// Re-anchor after a refit: the freshly fitted model's statistics
    /// become the baseline and the recent window restarts.
    pub fn reanchor(&mut self, baseline_violation_rate: f64, baseline_score_mean: f64) {
        *self = DriftMonitor::new(baseline_violation_rate, baseline_score_mean);
    }

    /// The current report.
    pub fn report(&self) -> DriftReport {
        let recent_violation_rate = if self.rows == 0 {
            self.baseline_violation_rate
        } else {
            self.violating as f64 / self.rows as f64
        };
        let recent_score_mean = if self.cells == 0 {
            self.baseline_score_mean
        } else {
            self.score_sum / self.cells as f64
        };
        let drift = if self.rows == 0 {
            0.0
        } else {
            (recent_violation_rate - self.baseline_violation_rate)
                .abs()
                .max((recent_score_mean - self.baseline_score_mean).abs())
        };
        DriftReport {
            baseline_violation_rate: self.baseline_violation_rate,
            recent_violation_rate,
            baseline_score_mean: self.baseline_score_mean,
            recent_score_mean,
            rows_since_refit: self.rows,
            drift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ingest_means_no_drift() {
        let m = DriftMonitor::new(0.1, 0.3);
        let r = m.report();
        assert_eq!(r.drift, 0.0);
        assert_eq!(r.rows_since_refit, 0);
        assert_eq!(r.recent_violation_rate, 0.1);
        assert_eq!(r.recent_score_mean, 0.3);
    }

    #[test]
    fn drift_is_the_larger_gap() {
        let mut m = DriftMonitor::new(0.10, 0.20);
        // 8 of 10 rows violating (gap 0.7), scores mean 0.25 (gap 0.05).
        m.record_batch(10, 8, 0.25 * 40.0, 40);
        let r = m.report();
        assert!((r.recent_violation_rate - 0.8).abs() < 1e-12);
        assert!((r.drift - 0.7).abs() < 1e-12, "drift {}", r.drift);
        // Score-side dominance works too.
        let mut m = DriftMonitor::new(0.10, 0.20);
        m.record_batch(10, 1, 0.9 * 40.0, 40);
        assert!((m.report().drift - 0.7).abs() < 1e-12);
    }

    #[test]
    fn batches_accumulate_and_reanchor_resets() {
        let mut m = DriftMonitor::new(0.0, 0.5);
        m.record_batch(5, 5, 2.5, 5);
        m.record_batch(5, 0, 2.5, 5);
        let r = m.report();
        assert_eq!(r.rows_since_refit, 10);
        assert!((r.recent_violation_rate - 0.5).abs() < 1e-12);
        m.reanchor(0.5, 0.5);
        let r = m.report();
        assert_eq!(r.drift, 0.0);
        assert_eq!(r.rows_since_refit, 0);
        assert_eq!(r.baseline_violation_rate, 0.5);
    }
}
