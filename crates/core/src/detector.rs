//! The end-to-end `HoloDetect` detector.

use crate::config::HoloDetectConfig;
use crate::fitted::FittedHoloDetect;
use crate::strategies::{fit_strategy, Strategy};
use crate::trainer::Pipeline;
use holo_eval::{Detector, FitContext, TrainedModel};

/// HoloDetect: representation learning + data augmentation for few-shot
/// error detection. The [`Strategy`] selects the training paradigm; the
/// default is the paper's AUG.
///
/// Fit once with [`HoloDetect::fit_model`] (or the [`Detector::fit`]
/// trait method), then score/predict arbitrary cell batches through the
/// returned [`FittedHoloDetect`] without re-training.
pub struct HoloDetect {
    cfg: HoloDetectConfig,
    strategy: Strategy,
}

impl HoloDetect {
    /// AUG with the given configuration.
    pub fn new(cfg: HoloDetectConfig) -> Self {
        HoloDetect {
            cfg,
            strategy: Strategy::Augmentation { target_ratio: None },
        }
    }

    /// Any training strategy (SuperL / SemiL / ActiveL / Resampling /
    /// ratio-forced AUG).
    pub fn with_strategy(cfg: HoloDetectConfig, strategy: Strategy) -> Self {
        HoloDetect { cfg, strategy }
    }

    /// The active configuration.
    pub fn config(&self) -> &HoloDetectConfig {
        &self.cfg
    }

    /// The active strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Fit the full pipeline — representation `Q`, channel + augmentation
    /// (strategy-dependent), the wide-and-deep classifier `M`, Platt
    /// calibration, and threshold tuning — returning the concrete fitted
    /// model (use [`Detector::fit`] when a trait object suffices).
    pub fn fit_model(&self, ctx: &FitContext<'_>) -> FittedHoloDetect {
        if ctx.train.is_empty() {
            return FittedHoloDetect::degenerate(self.strategy.method_name());
        }
        let pipeline = Pipeline::fit(&self.cfg, ctx.dirty, ctx.constraints, ctx.seed);
        fit_strategy(&self.strategy, pipeline, ctx)
    }
}

impl Detector for HoloDetect {
    fn name(&self) -> &'static str {
        self.strategy.method_name()
    }

    fn fit(&self, ctx: &FitContext<'_>) -> Box<dyn TrainedModel> {
        Box::new(self.fit_model(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_data::{CellId, Label, TrainingSet};
    use holo_datagen::{generate, DatasetKind};
    use holo_eval::{Confusion, DetectionContext, Split, SplitConfig};

    /// End-to-end on a small Hospital-like dataset: AUG should reach
    /// usable F1 even from 10% labels, beating blind guessing by a wide
    /// margin.
    #[test]
    fn end_to_end_hospital_like() {
        let g = generate(DatasetKind::Hospital, 220, 5);
        let split = Split::new(
            &g.dirty,
            SplitConfig {
                train_frac: 0.10,
                sampling_frac: 0.0,
                seed: 1,
            },
        );
        let train = split.training_set(&g.dirty, &g.truth);
        let eval_cells = split.test_cells(&g.dirty);
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 30;
        let ctx = DetectionContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            eval_cells: &eval_cells,
            seed: 3,
        };
        let det = HoloDetect::new(cfg);
        let labels = det.detect(&ctx);
        assert_eq!(labels.len(), eval_cells.len());
        let mut c = Confusion::default();
        for (cell, pred) in eval_cells.iter().zip(&labels) {
            c.record(*pred, g.truth.label(*cell));
        }
        // Sanity bound, not a benchmark: must beat the trivial baselines.
        assert!(
            c.f1() > 0.3,
            "AUG f1 too low: p={:.3} r={:.3} f1={:.3}",
            c.precision(),
            c.recall(),
            c.f1()
        );
    }

    #[test]
    fn empty_training_set_is_all_correct() {
        let g = generate(DatasetKind::Adult, 60, 2);
        let train = TrainingSet::new();
        let cells: Vec<CellId> = g.dirty.cell_ids().take(30).collect();
        let ctx = FitContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            seed: 0,
        };
        let det = HoloDetect::new(HoloDetectConfig::fast());
        let model = det.fit(&ctx);
        assert!(model
            .score_batch(&g.dirty, &cells)
            .unwrap()
            .iter()
            .all(|&p| p == 0.0));
        let labels = model
            .predict_batch(&g.dirty, &cells, model.default_threshold())
            .unwrap();
        assert!(labels.iter().all(|&l| l == Label::Correct));
    }

    #[test]
    fn strategies_all_run() {
        let g = generate(DatasetKind::Hospital, 120, 9);
        let split = Split::new(
            &g.dirty,
            SplitConfig {
                train_frac: 0.15,
                sampling_frac: 0.2,
                seed: 4,
            },
        );
        let train = split.training_set(&g.dirty, &g.truth);
        let sampling = split.sampling_set(&g.dirty, &g.truth);
        let eval_cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(100).collect();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 8;
        let ctx = FitContext {
            dirty: &g.dirty,
            train: &train,
            sampling: Some(&sampling),
            constraints: &g.constraints,
            seed: 1,
        };
        let strategies = [
            Strategy::Augmentation { target_ratio: None },
            Strategy::Augmentation {
                target_ratio: Some(0.3),
            },
            Strategy::Supervised,
            Strategy::Resampling,
            Strategy::SemiSupervised {
                rounds: 1,
                confidence: 0.9,
                max_per_round: 50,
            },
            Strategy::ActiveLearning {
                loops: 2,
                per_loop: 10,
            },
        ];
        for s in strategies {
            let det = HoloDetect::with_strategy(cfg.clone(), s.clone());
            let model = det.fit(&ctx);
            let scores = model.score_batch(&g.dirty, &eval_cells).unwrap();
            assert_eq!(scores.len(), eval_cells.len(), "strategy {s:?}");
            assert!(
                scores.iter().all(|p| (0.0..=1.0).contains(p)),
                "strategy {s:?} produced out-of-range scores"
            );
            let labels = model
                .predict_batch(&g.dirty, &eval_cells, model.default_threshold())
                .unwrap();
            assert_eq!(labels.len(), eval_cells.len(), "strategy {s:?}");
        }
    }

    #[test]
    fn deterministic_given_seeds() {
        let g = generate(DatasetKind::Adult, 80, 3);
        let split = Split::new(
            &g.dirty,
            SplitConfig {
                train_frac: 0.2,
                sampling_frac: 0.0,
                seed: 2,
            },
        );
        let train = split.training_set(&g.dirty, &g.truth);
        let eval_cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(40).collect();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 6;
        let run = || {
            let ctx = DetectionContext {
                dirty: &g.dirty,
                train: &train,
                sampling: None,
                constraints: &g.constraints,
                eval_cells: &eval_cells,
                seed: 5,
            };
            let det = HoloDetect::new(cfg.clone());
            det.detect(&ctx)
        };
        assert_eq!(run(), run());
    }

    /// The tentpole contract: one fit, many disjoint predict batches,
    /// no re-training, identical scores to a single whole-batch call.
    #[test]
    fn fit_once_score_many_batches() {
        let g = generate(DatasetKind::Hospital, 150, 8);
        let split = Split::new(
            &g.dirty,
            SplitConfig {
                train_frac: 0.15,
                sampling_frac: 0.0,
                seed: 3,
            },
        );
        let train = split.training_set(&g.dirty, &g.truth);
        let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(60).collect();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 8;
        let ctx = FitContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            seed: 2,
        };
        let det = HoloDetect::new(cfg);
        let model = det.fit(&ctx);
        let all = model.score_batch(&g.dirty, &cells).unwrap();
        let (first, second) = cells.split_at(cells.len() / 2);
        let mut rejoined = model.score_batch(&g.dirty, first).unwrap();
        rejoined.extend(model.score_batch(&g.dirty, second).unwrap());
        assert_eq!(all, rejoined);
    }
}
