//! The wide-and-deep model of Figure 7.
//!
//! Each learnable representation (char / word / tuple / neighbourhood
//! embedding) feeds its own branch — `Highway ×2 → ReLU → Dense(d→1)`
//! (Figure 2B) — whose scalar output is concatenated with the wide
//! features into the joint representation. The classifier `M`
//! (Figure 2C) is `Dropout → Dense → ReLU → Dense(2)` trained with
//! softmax/logistic loss. Everything is trained jointly: "At training
//! time, we backpropagate through the entire network jointly, rather
//! than training specific representations" (Appendix A.1).

use holo_features::FeatureLayout;
use holo_nn::{
    softmax_cross_entropy, Adam, Dense, Dropout, Highway, Layer, Matrix, Optimizer, Param, Relu,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the learnable branches transform their embedding inputs.
///
/// The paper uses highway layers (Figure 2B) and motivates them with
/// prior successes \[58\] but does not ablate the choice; the
/// `ablation_highway` experiment binary compares both styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchStyle {
    /// `Highway ×2 → ReLU → Dense(d→1)` — the paper's architecture.
    #[default]
    Highway,
    /// `Dense ×2 (ReLU) → Dense(d→1)` — a plain MLP of the same depth.
    PlainDense,
}

/// One learnable branch.
struct Branch {
    layers: Vec<Box<dyn Layer>>,
}

impl Branch {
    fn new(dim: usize, style: BranchStyle, rng: &mut StdRng) -> Self {
        let layers: Vec<Box<dyn Layer>> = match style {
            BranchStyle::Highway => vec![
                Box::new(Highway::new(dim, rng)),
                Box::new(Highway::new(dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, 1, rng)),
            ],
            BranchStyle::PlainDense => vec![
                Box::new(Dense::new(dim, dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, 1, rng)),
            ],
        };
        Branch { layers }
    }
}

/// The jointly-trained wide-and-deep error-detection model.
pub struct WideDeepModel {
    layout: FeatureLayout,
    branches: Vec<Branch>,
    classifier: Vec<Box<dyn Layer>>,
    rng: StdRng,
}

impl WideDeepModel {
    /// Build for a feature layout with the paper's highway branches; all
    /// parameters Xavier-initialized from the seed.
    pub fn new(layout: FeatureLayout, hidden_dim: usize, dropout: f32, seed: u64) -> Self {
        Self::with_branch_style(layout, hidden_dim, dropout, seed, BranchStyle::Highway)
    }

    /// Build with an explicit [`BranchStyle`] (the highway ablation).
    pub fn with_branch_style(
        layout: FeatureLayout,
        hidden_dim: usize,
        dropout: f32,
        seed: u64,
        style: BranchStyle,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let branches: Vec<Branch> = layout
            .branch_dims
            .iter()
            .map(|&d| Branch::new(d, style, &mut rng))
            .collect();
        let joint_dim = layout.wide_dim() + branches.len();
        let classifier: Vec<Box<dyn Layer>> = vec![
            Box::new(Dropout::new(dropout, seed.wrapping_add(1))),
            Box::new(Dense::new(joint_dim, hidden_dim, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(hidden_dim, 2, &mut rng)),
        ];
        WideDeepModel {
            layout,
            branches,
            classifier,
            rng,
        }
    }

    /// The layout this model expects.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Total trainable parameter count.
    pub fn n_params(&mut self) -> usize {
        let mut n = 0;
        for b in &mut self.branches {
            for l in &mut b.layers {
                n += l.params_mut().iter().map(|p| p.len()).sum::<usize>();
            }
        }
        for l in &mut self.classifier {
            n += l.params_mut().iter().map(|p| p.len()).sum::<usize>();
        }
        n
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let branches = &mut self.branches;
        let classifier = &mut self.classifier;
        run_dag(
            &self.layout,
            x,
            branches.len(),
            |bi, mut h| {
                for l in &mut branches[bi].layers {
                    h = l.forward(&h, train);
                }
                h
            },
            |mut joint| {
                for l in classifier.iter_mut() {
                    joint = l.forward(&joint, train);
                }
                joint
            },
        )
    }

    /// Inference-only forward pass (eval mode, shared access) — the
    /// scoring path of a fitted model, callable from many threads.
    fn forward_infer(&self, x: &Matrix) -> Matrix {
        run_dag(
            &self.layout,
            x,
            self.branches.len(),
            |bi, mut h| {
                for l in &self.branches[bi].layers {
                    h = l.infer(&h);
                }
                h
            },
            |mut joint| {
                for l in &self.classifier {
                    joint = l.infer(&joint);
                }
                joint
            },
        )
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let mut g = grad_logits.clone();
        for l in self.classifier.iter_mut().rev() {
            g = l.backward(&g);
        }
        // Split the joint gradient: wide block (no params) + 1 col/branch.
        let mut widths = vec![self.layout.wide_dim()];
        widths.extend(std::iter::repeat_n(1usize, self.branches.len()));
        let parts = g.split_cols(&widths);
        for (branch, grad) in self.branches.iter_mut().zip(&parts[1..]) {
            let mut bg = grad.clone();
            for l in branch.layers.iter_mut().rev() {
                bg = l.backward(&bg);
            }
        }
    }

    fn zero_grad(&mut self) {
        for b in &mut self.branches {
            for l in &mut b.layers {
                l.zero_grad();
            }
        }
        for l in &mut self.classifier {
            l.zero_grad();
        }
    }

    fn step(&mut self, opt: &mut Adam) {
        opt.begin_step();
        for b in &mut self.branches {
            for l in &mut b.layers {
                for p in l.params_mut() {
                    opt.update(p);
                }
            }
        }
        for l in &mut self.classifier {
            for p in l.params_mut() {
                opt.update(p);
            }
        }
    }

    /// Train with mini-batch ADAM. `targets[i] ∈ {0 = correct, 1 = error}`.
    /// Returns the mean loss of the final epoch.
    pub fn train(
        &mut self,
        x: &Matrix,
        targets: &[usize],
        epochs: usize,
        batch_size: usize,
        lr: f32,
    ) -> f32 {
        assert_eq!(x.rows(), targets.len(), "features/targets mismatch");
        assert!(x.rows() > 0, "empty training set");
        let mut opt = Adam::new(lr);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let bs = batch_size.max(1);
        let mut last_epoch_loss = 0.0f32;
        for _ in 0..epochs {
            order.shuffle(&mut self.rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let bx = x.gather_rows(chunk);
                let bt: Vec<usize> = chunk.iter().map(|&i| targets[i]).collect();
                self.zero_grad();
                let logits = self.forward(&bx, true);
                let (loss, grad) = softmax_cross_entropy(&logits, &bt);
                self.backward(&grad);
                self.step(&mut opt);
                epoch_loss += loss;
                batches += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        last_epoch_loss
    }

    /// Raw error-class margins `z_error − z_correct` (eval mode, shared
    /// access), the scores Platt scaling calibrates.
    pub fn scores(&self, x: &Matrix) -> Vec<f32> {
        if x.rows() == 0 {
            return Vec::new();
        }
        let logits = self.forward_infer(x);
        (0..x.rows())
            .map(|i| logits.get(i, 1) - logits.get(i, 0))
            .collect()
    }

    /// Uncalibrated error probabilities via softmax (eval mode, shared
    /// access).
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        if x.rows() == 0 {
            return Vec::new();
        }
        let logits = self.forward_infer(x);
        let p = holo_nn::loss::softmax(&logits);
        (0..x.rows()).map(|i| p.get(i, 1)).collect()
    }

    /// Visit every trainable parameter in the fixed traversal order
    /// (branches in layout order, then the classifier; layers front to
    /// back). Model serialization writes weights through this walk.
    pub fn for_each_param<F: FnMut(&Param)>(&self, mut f: F) {
        for b in &self.branches {
            for l in &b.layers {
                for p in l.params() {
                    f(p);
                }
            }
        }
        for l in &self.classifier {
            for p in l.params() {
                f(p);
            }
        }
    }

    /// Mutable counterpart of [`WideDeepModel::for_each_param`] — the
    /// same traversal order; artifact loading overwrites weights through
    /// this walk.
    pub fn for_each_param_mut<F: FnMut(&mut Param)>(&mut self, mut f: F) {
        for b in &mut self.branches {
            for l in &mut b.layers {
                for p in l.params_mut() {
                    f(p);
                }
            }
        }
        for l in &mut self.classifier {
            for p in l.params_mut() {
                f(p);
            }
        }
    }
}

/// The wide-and-deep DAG shape, shared by the training and inference
/// passes so the split/branch/concat assembly exists once: split the
/// input into the wide block plus one slice per branch, run each branch
/// stack, concatenate, run the classifier stack.
fn run_dag(
    layout: &FeatureLayout,
    x: &Matrix,
    n_branches: usize,
    mut run_branch: impl FnMut(usize, Matrix) -> Matrix,
    run_classifier: impl FnOnce(Matrix) -> Matrix,
) -> Matrix {
    let parts = x.split_cols(&layout.split_widths());
    let mut joint_parts: Vec<Matrix> = Vec::with_capacity(1 + n_branches);
    joint_parts.push(parts[0].clone());
    for (bi, input) in parts[1..].iter().enumerate() {
        joint_parts.push(run_branch(bi, input.clone()));
    }
    let refs: Vec<&Matrix> = joint_parts.iter().collect();
    run_classifier(Matrix::hstack(&refs))
}

/// Build a feature matrix from per-example vectors.
pub fn matrix_from_rows(rows: &[Vec<f32>]) -> Matrix {
    assert!(!rows.is_empty(), "no feature rows");
    let dim = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * dim);
    for r in rows {
        assert_eq!(r.len(), dim, "ragged feature rows");
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FeatureLayout {
        FeatureLayout {
            wide_names: vec!["w0".into(), "w1".into(), "w2".into()],
            branch_names: vec!["b0".into(), "b1".into()],
            branch_dims: vec![8, 8],
        }
    }

    /// Synthetic task: error iff (wide\[0\] > 0.5) XOR (branch0 mean > 0).
    fn synthetic(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = layout();
        let mut rows = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            use rand::Rng;
            let wide0: f32 = rng.random_range(0.0..1.0);
            let sign: f32 = if rng.random_range(0.0..1.0) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let mut row = vec![wide0, rng.random_range(0.0..1.0), 0.5];
            row.extend((0..8).map(|_| sign * rng.random_range(0.1..0.5f32)));
            row.extend((0..8).map(|_| rng.random_range(-0.3..0.3f32)));
            assert_eq!(row.len(), l.total_dim());
            targets.push(usize::from((wide0 > 0.5) ^ (sign > 0.0)));
            rows.push(row);
        }
        (matrix_from_rows(&rows), targets)
    }

    #[test]
    fn learns_nonlinear_interaction() {
        let (x, y) = synthetic(400, 3);
        let mut m = WideDeepModel::new(layout(), 24, 0.0, 5);
        let loss = m.train(&x, &y, 120, 32, 0.01);
        assert!(loss < 0.35, "loss did not converge: {loss}");
        let p = m.predict_proba(&x);
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(&pi, &yi)| usize::from(pi > 0.5) == yi)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn scores_are_monotone_in_probability() {
        let (x, y) = synthetic(100, 9);
        let mut m = WideDeepModel::new(layout(), 16, 0.0, 1);
        m.train(&x, &y, 30, 16, 0.01);
        let scores = m.scores(&x);
        let probs = m.predict_proba(&x);
        for i in 0..99 {
            if scores[i] < scores[i + 1] {
                assert!(probs[i] <= probs[i + 1] + 1e-5);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = synthetic(60, 2);
        let run = || {
            let mut m = WideDeepModel::new(layout(), 16, 0.1, 11);
            m.train(&x, &y, 20, 8, 0.01);
            m.predict_proba(&x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_handles_no_branches() {
        // Wide-only layout (all embeddings ablated).
        let l = FeatureLayout {
            wide_names: vec!["a".into(), "b".into()],
            branch_names: vec![],
            branch_dims: vec![],
        };
        let x = matrix_from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let mut m = WideDeepModel::new(l, 8, 0.0, 3);
        let loss = m.train(&x, &[0, 1], 100, 2, 0.05);
        assert!(loss < 0.2);
    }

    #[test]
    fn plain_dense_branches_also_learn() {
        let (x, y) = synthetic(300, 4);
        let mut m = WideDeepModel::with_branch_style(layout(), 24, 0.0, 5, BranchStyle::PlainDense);
        let loss = m.train(&x, &y, 120, 32, 0.01);
        assert!(loss < 0.45, "plain-dense loss {loss}");
    }

    #[test]
    fn branch_styles_have_different_param_counts() {
        let mut hw = WideDeepModel::with_branch_style(layout(), 8, 0.0, 1, BranchStyle::Highway);
        let mut pd = WideDeepModel::with_branch_style(layout(), 8, 0.0, 1, BranchStyle::PlainDense);
        // Highway: 2 layers × (2 weight matrices + 2 biases); dense: 2 ×
        // (1 matrix + 1 bias) — highway must be bigger.
        assert!(hw.n_params() > pd.n_params());
    }

    #[test]
    fn n_params_positive_and_layout_kept() {
        let mut m = WideDeepModel::new(layout(), 16, 0.0, 1);
        assert!(m.n_params() > 100);
        assert_eq!(m.layout().n_branches(), 2);
    }

    /// Numerical gradient check through the *entire* wide-and-deep DAG:
    /// classifier → concat split → highway branches. Catches any error in
    /// the joint backward routing.
    #[test]
    fn whole_model_gradient_check() {
        let l = FeatureLayout {
            wide_names: vec!["w0".into(), "w1".into()],
            branch_names: vec!["b0".into(), "b1".into()],
            branch_dims: vec![3, 4],
        };
        let mut m = WideDeepModel::with_branch_style(l, 4, 0.0, 9, BranchStyle::Highway);
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::xavier(3, m.layout().total_dim(), &mut rng);
        let targets = [0usize, 1, 0];

        // Analytic gradients.
        m.zero_grad();
        let logits = m.forward(&x, false);
        let (_, grad) = holo_nn::softmax_cross_entropy(&logits, &targets);
        m.backward(&grad);

        let loss_of = |m: &mut WideDeepModel| -> f32 {
            let lg = m.forward(&x, false);
            holo_nn::softmax_cross_entropy(&lg, &targets).0
        };

        let eps = 1e-2f32;
        let tol = 3e-2f32;
        // Check a few parameters in every branch and the classifier.
        let n_branches = m.branches.len();
        for bi in 0..n_branches {
            for li in 0..m.branches[bi].layers.len() {
                let n_params = m.branches[bi].layers[li].params_mut().len();
                for pi in 0..n_params {
                    for i in [0usize, 1] {
                        let (orig, ana) = {
                            let p = &mut m.branches[bi].layers[li].params_mut()[pi];
                            if i >= p.value.data().len() {
                                continue;
                            }
                            (p.value.data()[i], p.grad.data()[i])
                        };
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig + eps;
                        let lp = loss_of(&mut m);
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig - eps;
                        let lm = loss_of(&mut m);
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig;
                        let num = (lp - lm) / (2.0 * eps);
                        assert!(
                            (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                            "branch {bi} layer {li} param {pi}[{i}]: numeric {num} vs \
                             analytic {ana}"
                        );
                    }
                }
            }
        }
        for li in 0..m.classifier.len() {
            let n_params = m.classifier[li].params_mut().len();
            for pi in 0..n_params {
                let (orig, ana) = {
                    let p = &mut m.classifier[li].params_mut()[pi];
                    (p.value.data()[0], p.grad.data()[0])
                };
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig + eps;
                let lp = loss_of(&mut m);
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig - eps;
                let lm = loss_of(&mut m);
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig;
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "classifier layer {li} param {pi}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// The shared-access inference DAG must agree with eval-mode
    /// training forward at the whole-model level (the per-layer
    /// agreement test lives in holo-nn).
    #[test]
    fn infer_path_matches_eval_forward() {
        let (x, y) = synthetic(60, 7);
        let mut m = WideDeepModel::new(layout(), 16, 0.2, 3);
        m.train(&x, &y, 10, 16, 0.01);
        let via_infer = m.forward_infer(&x);
        let via_forward = m.forward(&x, false);
        assert_eq!(via_infer, via_forward);
    }

    #[test]
    fn empty_prediction_is_empty() {
        let m = WideDeepModel::new(layout(), 8, 0.0, 1);
        let x = Matrix::zeros(0, m.layout().total_dim());
        assert!(m.predict_proba(&x).is_empty());
        assert!(m.scores(&x).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let mut m = WideDeepModel::new(layout(), 8, 0.0, 1);
        let x = Matrix::zeros(0, m.layout().total_dim());
        m.train(&x, &[], 1, 4, 0.01);
    }
}
