//! The wide-and-deep model of Figure 7.
//!
//! Each learnable representation (char / word / tuple / neighbourhood
//! embedding) feeds its own branch — `Highway ×2 → ReLU → Dense(d→1)`
//! (Figure 2B) — whose scalar output is concatenated with the wide
//! features into the joint representation. The classifier `M`
//! (Figure 2C) is `Dropout → Dense → ReLU → Dense(2)` trained with
//! softmax/logistic loss. Everything is trained jointly: "At training
//! time, we backpropagate through the entire network jointly, rather
//! than training specific representations" (Appendix A.1).

use holo_features::FeatureLayout;
use holo_nn::{
    softmax_cross_entropy_scaled, Adam, Dense, Dropout, Highway, Layer, Matrix, Optimizer, Param,
    Relu,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How the learnable branches transform their embedding inputs.
///
/// The paper uses highway layers (Figure 2B) and motivates them with
/// prior successes \[58\] but does not ablate the choice; the
/// `ablation_highway` experiment binary compares both styles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchStyle {
    /// `Highway ×2 → ReLU → Dense(d→1)` — the paper's architecture.
    #[default]
    Highway,
    /// `Dense ×2 (ReLU) → Dense(d→1)` — a plain MLP of the same depth.
    PlainDense,
}

/// One learnable branch.
struct Branch {
    layers: Vec<Box<dyn Layer>>,
}

impl Branch {
    fn new(dim: usize, style: BranchStyle, rng: &mut StdRng) -> Self {
        let layers: Vec<Box<dyn Layer>> = match style {
            BranchStyle::Highway => vec![
                Box::new(Highway::new(dim, rng)),
                Box::new(Highway::new(dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, 1, rng)),
            ],
            BranchStyle::PlainDense => vec![
                Box::new(Dense::new(dim, dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, dim, rng)),
                Box::new(Relu::new()),
                Box::new(Dense::new(dim, 1, rng)),
            ],
        };
        Branch { layers }
    }
}

/// The jointly-trained wide-and-deep error-detection model.
pub struct WideDeepModel {
    layout: FeatureLayout,
    branches: Vec<Branch>,
    classifier: Vec<Box<dyn Layer>>,
    rng: StdRng,
    // Construction recipe, kept so training can stamp out worker
    // replicas with the same skeleton ([`WideDeepModel::replica`]).
    hidden_dim: usize,
    dropout_p: f32,
    style: BranchStyle,
    seed: u64,
}

/// Fixed number of gradient shards each mini-batch is decomposed into,
/// *independent of thread count*. Every shard's forward/backward runs on
/// exactly its own rows, results land in per-shard slots, and the
/// reduction walks slots in shard order — so the arithmetic (including
/// f32 summation order) is identical whether 1 or N threads execute the
/// shards. 8 matches the default thread clamp and keeps per-shard
/// batches ≥4 rows at the default batch size of 32.
const SGD_SHARDS: usize = 8;

/// SplitMix64-style mixer for deriving per-(step, shard, layer) seeds.
fn mix_seed(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard's contribution to a step: flattened parameter gradients
/// (in [`WideDeepModel::for_each_param`] traversal order) plus the
/// unnormalized loss sum over the shard's rows.
#[derive(Default)]
struct ShardSlot {
    grads: Vec<f32>,
    loss: f64,
}

/// One SGD step's work unit, shared between the master and worker
/// threads. The atomic cursor hands out shard indices dynamically (the
/// `features_batch` idiom); each claimed shard writes its own slot, so
/// scheduling order never affects the result.
struct SgdStep {
    /// Master-weights snapshot workers load before computing (empty in
    /// single-threaded runs, where the master IS the weights).
    weights: Vec<f32>,
    /// Row indices per shard, in fixed decomposition order.
    shards: Vec<Vec<usize>>,
    /// Whole-batch row count (the gradient scale).
    total: usize,
    /// Global step index (drives per-shard dropout seeds).
    step: u64,
    cursor: AtomicUsize,
    slots: Vec<Mutex<ShardSlot>>,
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl SgdStep {
    /// Block until every shard's slot has been written.
    fn wait_done(&self) {
        let mut d = self.done.lock().expect("sgd done lock");
        while *d < self.shards.len() {
            d = self.done_cv.wait(d).expect("sgd done wait");
        }
    }
}

/// The master→worker step channel: a generation counter plus the
/// current step, bumped under one mutex so workers never miss or
/// double-run a step. Generation `u64::MAX` means training is over.
struct StepBoard {
    cell: Mutex<(u64, Option<Arc<SgdStep>>)>,
    cv: Condvar,
}

impl StepBoard {
    fn new() -> Self {
        StepBoard {
            cell: Mutex::new((0, None)),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, job: Arc<SgdStep>) {
        let mut cell = self.cell.lock().expect("step board lock");
        cell.0 += 1;
        cell.1 = Some(job);
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut cell = self.cell.lock().expect("step board lock");
        cell.0 = u64::MAX;
        cell.1 = None;
        self.cv.notify_all();
    }

    /// Worker side: wait for a generation newer than `last_gen`;
    /// `None` once the board is closed.
    fn next(&self, last_gen: &mut u64) -> Option<Arc<SgdStep>> {
        let mut cell = self.cell.lock().expect("step board lock");
        loop {
            if cell.0 == u64::MAX {
                return None;
            }
            if cell.0 != *last_gen {
                *last_gen = cell.0;
                return cell.1.clone();
            }
            cell = self.cv.wait(cell).expect("step board wait");
        }
    }
}

impl WideDeepModel {
    /// Build for a feature layout with the paper's highway branches; all
    /// parameters Xavier-initialized from the seed.
    pub fn new(layout: FeatureLayout, hidden_dim: usize, dropout: f32, seed: u64) -> Self {
        Self::with_branch_style(layout, hidden_dim, dropout, seed, BranchStyle::Highway)
    }

    /// Build with an explicit [`BranchStyle`] (the highway ablation).
    pub fn with_branch_style(
        layout: FeatureLayout,
        hidden_dim: usize,
        dropout: f32,
        seed: u64,
        style: BranchStyle,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let branches: Vec<Branch> = layout
            .branch_dims
            .iter()
            .map(|&d| Branch::new(d, style, &mut rng))
            .collect();
        let joint_dim = layout.wide_dim() + branches.len();
        let classifier: Vec<Box<dyn Layer>> = vec![
            Box::new(Dropout::new(dropout, seed.wrapping_add(1))),
            Box::new(Dense::new(joint_dim, hidden_dim, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(hidden_dim, 2, &mut rng)),
        ];
        WideDeepModel {
            layout,
            branches,
            classifier,
            rng,
            hidden_dim,
            dropout_p: dropout,
            style,
            seed,
        }
    }

    /// A fresh model with the same skeleton (layout, widths, branch
    /// style, seed) — a worker replica whose parameters are overwritten
    /// from the master each step and whose dropout is reseeded per
    /// shard, so it never consumes its construction-time RNG streams.
    fn replica(&self) -> WideDeepModel {
        WideDeepModel::with_branch_style(
            self.layout.clone(),
            self.hidden_dim,
            self.dropout_p,
            self.seed,
            self.style,
        )
    }

    /// The layout this model expects.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// Total trainable parameter count.
    pub fn n_params(&mut self) -> usize {
        let mut n = 0;
        for b in &mut self.branches {
            for l in &mut b.layers {
                n += l.params_mut().iter().map(|p| p.len()).sum::<usize>();
            }
        }
        for l in &mut self.classifier {
            n += l.params_mut().iter().map(|p| p.len()).sum::<usize>();
        }
        n
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let branches = &mut self.branches;
        let classifier = &mut self.classifier;
        run_dag(
            &self.layout,
            x,
            branches.len(),
            |bi, mut h| {
                for l in &mut branches[bi].layers {
                    h = l.forward(&h, train);
                }
                h
            },
            |mut joint| {
                for l in classifier.iter_mut() {
                    joint = l.forward(&joint, train);
                }
                joint
            },
        )
    }

    /// Inference-only forward pass (eval mode, shared access) — the
    /// scoring path of a fitted model, callable from many threads.
    fn forward_infer(&self, x: &Matrix) -> Matrix {
        run_dag(
            &self.layout,
            x,
            self.branches.len(),
            |bi, mut h| {
                for l in &self.branches[bi].layers {
                    h = l.infer(&h);
                }
                h
            },
            |mut joint| {
                for l in &self.classifier {
                    joint = l.infer(&joint);
                }
                joint
            },
        )
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let mut g = grad_logits.clone();
        for l in self.classifier.iter_mut().rev() {
            g = l.backward(&g);
        }
        // Split the joint gradient: wide block (no params) + 1 col/branch.
        let mut widths = vec![self.layout.wide_dim()];
        widths.extend(std::iter::repeat_n(1usize, self.branches.len()));
        let parts = g.split_cols(&widths);
        for (branch, grad) in self.branches.iter_mut().zip(&parts[1..]) {
            let mut bg = grad.clone();
            for l in branch.layers.iter_mut().rev() {
                bg = l.backward(&bg);
            }
        }
    }

    fn zero_grad(&mut self) {
        for b in &mut self.branches {
            for l in &mut b.layers {
                l.zero_grad();
            }
        }
        for l in &mut self.classifier {
            l.zero_grad();
        }
    }

    fn step(&mut self, opt: &mut Adam) {
        opt.begin_step();
        for b in &mut self.branches {
            for l in &mut b.layers {
                for p in l.params_mut() {
                    opt.update(p);
                }
            }
        }
        for l in &mut self.classifier {
            for p in l.params_mut() {
                opt.update(p);
            }
        }
    }

    /// Train with mini-batch ADAM on one thread.
    /// `targets[i] ∈ {0 = correct, 1 = error}`. Returns the mean loss of
    /// the final epoch. Equivalent to [`WideDeepModel::train_threaded`]
    /// with `threads = 1` (and bitwise-identical to it at any thread
    /// count).
    pub fn train(
        &mut self,
        x: &Matrix,
        targets: &[usize],
        epochs: usize,
        batch_size: usize,
        lr: f32,
    ) -> f32 {
        self.train_threaded(x, targets, epochs, batch_size, lr, 1)
    }

    /// Train with mini-batch ADAM, sharding each mini-batch's
    /// forward/backward over up to `threads` worker threads.
    ///
    /// Every mini-batch is decomposed into the same fixed number of
    /// row-shards regardless of `threads`; workers claim shards through
    /// an atomic cursor, each shard's gradient lands in its own slot,
    /// and the master reduces the slots in fixed shard order before the
    /// (sequential) ADAM update. Dropout masks are reseeded per
    /// (step, shard), never drawn from a shared stream. Consequently the
    /// trained parameters — and everything downstream: scores,
    /// calibration, thresholds — are **bitwise-identical across thread
    /// counts** at the same seed; `threads` buys wall-time only.
    pub fn train_threaded(
        &mut self,
        x: &Matrix,
        targets: &[usize],
        epochs: usize,
        batch_size: usize,
        lr: f32,
        threads: usize,
    ) -> f32 {
        assert_eq!(x.rows(), targets.len(), "features/targets mismatch");
        assert!(x.rows() > 0, "empty training set");
        let bs = batch_size.max(1);
        let shard_rows = bs.div_ceil(SGD_SHARDS);
        let salt = mix_seed(self.seed, 0x5bd1_e995);
        let n_helpers = threads.clamp(1, SGD_SHARDS).saturating_sub(1);
        if n_helpers == 0 {
            return self.train_epochs(x, targets, epochs, bs, shard_rows, lr, salt, None);
        }
        let replicas: Vec<WideDeepModel> = (0..n_helpers).map(|_| self.replica()).collect();
        let board = StepBoard::new();
        let mut last_loss = 0.0f32;
        std::thread::scope(|s| {
            for mut rep in replicas {
                let board = &board;
                s.spawn(move || {
                    let mut last_gen = 0u64;
                    while let Some(job) = board.next(&mut last_gen) {
                        rep.load_params_flat(&job.weights);
                        rep.run_shards(&job, x, targets, salt);
                    }
                });
            }
            last_loss =
                self.train_epochs(x, targets, epochs, bs, shard_rows, lr, salt, Some(&board));
            board.close();
        });
        last_loss
    }

    /// The epoch/step loop shared by the single- and multi-threaded
    /// paths; `board` is `Some` when worker threads are standing by.
    #[allow(clippy::too_many_arguments)]
    fn train_epochs(
        &mut self,
        x: &Matrix,
        targets: &[usize],
        epochs: usize,
        bs: usize,
        shard_rows: usize,
        lr: f32,
        salt: u64,
        board: Option<&StepBoard>,
    ) -> f32 {
        let mut opt = Adam::new(lr);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut last_epoch_loss = 0.0f32;
        let mut step = 0u64;
        for _ in 0..epochs {
            order.shuffle(&mut self.rng);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(bs) {
                let shards: Vec<Vec<usize>> =
                    chunk.chunks(shard_rows).map(<[usize]>::to_vec).collect();
                let n_shards = shards.len();
                let job = Arc::new(SgdStep {
                    weights: if board.is_some() {
                        self.params_flat()
                    } else {
                        Vec::new()
                    },
                    shards,
                    total: chunk.len(),
                    step,
                    cursor: AtomicUsize::new(0),
                    slots: (0..n_shards)
                        .map(|_| Mutex::new(ShardSlot::default()))
                        .collect(),
                    done: Mutex::new(0),
                    done_cv: Condvar::new(),
                });
                if let Some(b) = board {
                    b.publish(Arc::clone(&job));
                }
                // The master claims shards too; its own parameters equal
                // the snapshot workers load, so any claimer computes the
                // same bits.
                self.run_shards(&job, x, targets, salt);
                job.wait_done();
                self.zero_grad();
                let mut batch_loss = 0.0f64;
                for slot in &job.slots {
                    let s = slot.lock().expect("shard slot lock");
                    self.accumulate_grads_flat(&s.grads);
                    batch_loss += s.loss;
                }
                self.step(&mut opt);
                epoch_loss += (batch_loss / job.total as f64) as f32;
                batches += 1;
                step += 1;
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        last_epoch_loss
    }

    /// Claim shards off the step's cursor until exhausted, writing each
    /// shard's gradient + loss into its slot. Runs on the master (with
    /// `self`) and on worker replicas alike.
    fn run_shards(&mut self, job: &SgdStep, x: &Matrix, targets: &[usize], salt: u64) {
        loop {
            let si = job.cursor.fetch_add(1, Ordering::Relaxed);
            if si >= job.shards.len() {
                return;
            }
            let shard = &job.shards[si];
            let bx = x.gather_rows(shard);
            let bt: Vec<usize> = shard.iter().map(|&i| targets[i]).collect();
            let shard_seed = mix_seed(mix_seed(salt, job.step), si as u64);
            let loss = self.shard_pass(&bx, &bt, job.total, shard_seed);
            {
                let mut slot = job.slots[si].lock().expect("shard slot lock");
                self.grads_flat_into(&mut slot.grads);
                slot.loss = loss;
            }
            let mut d = job.done.lock().expect("sgd done lock");
            *d += 1;
            if *d >= job.shards.len() {
                job.done_cv.notify_all();
            }
        }
    }

    /// One shard's forward/backward: reseed stochastic layers from the
    /// shard's deterministic seed, compute gradients scaled by the
    /// *whole-batch* row count, return the unnormalized loss sum.
    fn shard_pass(&mut self, bx: &Matrix, bt: &[usize], total: usize, shard_seed: u64) -> f64 {
        self.reseed_stochastic(shard_seed);
        self.zero_grad();
        let logits = self.forward(bx, true);
        let (loss, grad) = softmax_cross_entropy_scaled(&logits, bt, total);
        self.backward(&grad);
        loss
    }

    /// Reseed every stochastic layer (dropout) from `seed`, mixed with
    /// the layer's position so multiple stochastic layers decorrelate.
    fn reseed_stochastic(&mut self, seed: u64) {
        let mut i = 0u64;
        for b in &mut self.branches {
            for l in &mut b.layers {
                l.reseed(mix_seed(seed, i));
                i += 1;
            }
        }
        for l in &mut self.classifier {
            l.reseed(mix_seed(seed, i));
            i += 1;
        }
    }

    /// All parameter values flattened in traversal order.
    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.for_each_param(|p| out.extend_from_slice(p.value.data()));
        out
    }

    /// Overwrite all parameter values from a flat snapshot.
    fn load_params_flat(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.for_each_param_mut(|p| {
            let d = p.value.data_mut();
            let n = d.len();
            d.copy_from_slice(&flat[off..off + n]);
            off += n;
        });
    }

    /// All parameter gradients flattened in traversal order.
    fn grads_flat_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.for_each_param(|p| out.extend_from_slice(p.grad.data()));
    }

    /// Add a flat gradient snapshot into the parameter gradients.
    fn accumulate_grads_flat(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.for_each_param_mut(|p| {
            let g = p.grad.data_mut();
            let n = g.len();
            for (gi, &fi) in g.iter_mut().zip(&flat[off..off + n]) {
                *gi += fi;
            }
            off += n;
        });
    }

    /// Raw error-class margins `z_error − z_correct` (eval mode, shared
    /// access), the scores Platt scaling calibrates.
    pub fn scores(&self, x: &Matrix) -> Vec<f32> {
        if x.rows() == 0 {
            return Vec::new();
        }
        let logits = self.forward_infer(x);
        (0..x.rows())
            .map(|i| logits.get(i, 1) - logits.get(i, 0))
            .collect()
    }

    /// Uncalibrated error probabilities via softmax (eval mode, shared
    /// access).
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        if x.rows() == 0 {
            return Vec::new();
        }
        let logits = self.forward_infer(x);
        let p = holo_nn::loss::softmax(&logits);
        (0..x.rows()).map(|i| p.get(i, 1)).collect()
    }

    /// Visit every trainable parameter in the fixed traversal order
    /// (branches in layout order, then the classifier; layers front to
    /// back). Model serialization writes weights through this walk.
    pub fn for_each_param<F: FnMut(&Param)>(&self, mut f: F) {
        for b in &self.branches {
            for l in &b.layers {
                for p in l.params() {
                    f(p);
                }
            }
        }
        for l in &self.classifier {
            for p in l.params() {
                f(p);
            }
        }
    }

    /// Mutable counterpart of [`WideDeepModel::for_each_param`] — the
    /// same traversal order; artifact loading overwrites weights through
    /// this walk.
    pub fn for_each_param_mut<F: FnMut(&mut Param)>(&mut self, mut f: F) {
        for b in &mut self.branches {
            for l in &mut b.layers {
                for p in l.params_mut() {
                    f(p);
                }
            }
        }
        for l in &mut self.classifier {
            for p in l.params_mut() {
                f(p);
            }
        }
    }
}

/// The wide-and-deep DAG shape, shared by the training and inference
/// passes so the split/branch/concat assembly exists once: split the
/// input into the wide block plus one slice per branch, run each branch
/// stack, concatenate, run the classifier stack.
fn run_dag(
    layout: &FeatureLayout,
    x: &Matrix,
    n_branches: usize,
    mut run_branch: impl FnMut(usize, Matrix) -> Matrix,
    run_classifier: impl FnOnce(Matrix) -> Matrix,
) -> Matrix {
    let parts = x.split_cols(&layout.split_widths());
    let mut joint_parts: Vec<Matrix> = Vec::with_capacity(1 + n_branches);
    joint_parts.push(parts[0].clone());
    for (bi, input) in parts[1..].iter().enumerate() {
        joint_parts.push(run_branch(bi, input.clone()));
    }
    let refs: Vec<&Matrix> = joint_parts.iter().collect();
    run_classifier(Matrix::hstack(&refs))
}

/// Build a feature matrix from per-example vectors.
pub fn matrix_from_rows(rows: &[Vec<f32>]) -> Matrix {
    assert!(!rows.is_empty(), "no feature rows");
    let dim = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * dim);
    for r in rows {
        assert_eq!(r.len(), dim, "ragged feature rows");
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FeatureLayout {
        FeatureLayout {
            wide_names: vec!["w0".into(), "w1".into(), "w2".into()],
            branch_names: vec!["b0".into(), "b1".into()],
            branch_dims: vec![8, 8],
        }
    }

    /// Synthetic task: error iff (wide\[0\] > 0.5) XOR (branch0 mean > 0).
    fn synthetic(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = layout();
        let mut rows = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            use rand::Rng;
            let wide0: f32 = rng.random_range(0.0..1.0);
            let sign: f32 = if rng.random_range(0.0..1.0) < 0.5 {
                1.0
            } else {
                -1.0
            };
            let mut row = vec![wide0, rng.random_range(0.0..1.0), 0.5];
            row.extend((0..8).map(|_| sign * rng.random_range(0.1..0.5f32)));
            row.extend((0..8).map(|_| rng.random_range(-0.3..0.3f32)));
            assert_eq!(row.len(), l.total_dim());
            targets.push(usize::from((wide0 > 0.5) ^ (sign > 0.0)));
            rows.push(row);
        }
        (matrix_from_rows(&rows), targets)
    }

    #[test]
    fn learns_nonlinear_interaction() {
        let (x, y) = synthetic(400, 3);
        let mut m = WideDeepModel::new(layout(), 24, 0.0, 5);
        let loss = m.train(&x, &y, 120, 32, 0.01);
        assert!(loss < 0.35, "loss did not converge: {loss}");
        let p = m.predict_proba(&x);
        let acc = p
            .iter()
            .zip(&y)
            .filter(|(&pi, &yi)| usize::from(pi > 0.5) == yi)
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn scores_are_monotone_in_probability() {
        let (x, y) = synthetic(100, 9);
        let mut m = WideDeepModel::new(layout(), 16, 0.0, 1);
        m.train(&x, &y, 30, 16, 0.01);
        let scores = m.scores(&x);
        let probs = m.predict_proba(&x);
        for i in 0..99 {
            if scores[i] < scores[i + 1] {
                assert!(probs[i] <= probs[i + 1] + 1e-5);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = synthetic(60, 2);
        let run = || {
            let mut m = WideDeepModel::new(layout(), 16, 0.1, 11);
            m.train(&x, &y, 20, 8, 0.01);
            m.predict_proba(&x)
        };
        assert_eq!(run(), run());
    }

    /// The tentpole invariant: training with N threads produces
    /// bitwise-identical parameters, loss, and probabilities to training
    /// with 1 thread at the same seed — including with dropout active
    /// (per-shard reseeding) and a final ragged batch.
    #[test]
    fn train_is_bitwise_invariant_across_thread_counts() {
        let (x, y) = synthetic(130, 2); // 130 % 32 != 0 → ragged tail batch
        let run = |threads: usize| {
            let mut m = WideDeepModel::new(layout(), 16, 0.2, 11);
            let loss = m.train_threaded(&x, &y, 12, 32, 0.01, threads);
            let mut params = Vec::new();
            m.for_each_param(|p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
            (loss.to_bits(), params, m.predict_proba(&x))
        };
        let (loss1, params1, probs1) = run(1);
        for threads in [2, 3, 8, 64] {
            let (loss_n, params_n, probs_n) = run(threads);
            assert_eq!(loss1, loss_n, "loss diverged at {threads} threads");
            assert_eq!(params1, params_n, "params diverged at {threads} threads");
            assert_eq!(
                probs1.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                probs_n.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "probabilities diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn model_handles_no_branches() {
        // Wide-only layout (all embeddings ablated).
        let l = FeatureLayout {
            wide_names: vec!["a".into(), "b".into()],
            branch_names: vec![],
            branch_dims: vec![],
        };
        let x = matrix_from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let mut m = WideDeepModel::new(l, 8, 0.0, 3);
        let loss = m.train(&x, &[0, 1], 100, 2, 0.05);
        assert!(loss < 0.2);
    }

    #[test]
    fn plain_dense_branches_also_learn() {
        let (x, y) = synthetic(300, 4);
        let mut m = WideDeepModel::with_branch_style(layout(), 24, 0.0, 5, BranchStyle::PlainDense);
        let loss = m.train(&x, &y, 120, 32, 0.01);
        assert!(loss < 0.45, "plain-dense loss {loss}");
    }

    #[test]
    fn branch_styles_have_different_param_counts() {
        let mut hw = WideDeepModel::with_branch_style(layout(), 8, 0.0, 1, BranchStyle::Highway);
        let mut pd = WideDeepModel::with_branch_style(layout(), 8, 0.0, 1, BranchStyle::PlainDense);
        // Highway: 2 layers × (2 weight matrices + 2 biases); dense: 2 ×
        // (1 matrix + 1 bias) — highway must be bigger.
        assert!(hw.n_params() > pd.n_params());
    }

    #[test]
    fn n_params_positive_and_layout_kept() {
        let mut m = WideDeepModel::new(layout(), 16, 0.0, 1);
        assert!(m.n_params() > 100);
        assert_eq!(m.layout().n_branches(), 2);
    }

    /// Numerical gradient check through the *entire* wide-and-deep DAG:
    /// classifier → concat split → highway branches. Catches any error in
    /// the joint backward routing.
    #[test]
    fn whole_model_gradient_check() {
        let l = FeatureLayout {
            wide_names: vec!["w0".into(), "w1".into()],
            branch_names: vec!["b0".into(), "b1".into()],
            branch_dims: vec![3, 4],
        };
        let mut m = WideDeepModel::with_branch_style(l, 4, 0.0, 9, BranchStyle::Highway);
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::xavier(3, m.layout().total_dim(), &mut rng);
        let targets = [0usize, 1, 0];

        // Analytic gradients.
        m.zero_grad();
        let logits = m.forward(&x, false);
        let (_, grad) = holo_nn::softmax_cross_entropy(&logits, &targets);
        m.backward(&grad);

        let loss_of = |m: &mut WideDeepModel| -> f32 {
            let lg = m.forward(&x, false);
            holo_nn::softmax_cross_entropy(&lg, &targets).0
        };

        let eps = 1e-2f32;
        let tol = 3e-2f32;
        // Check a few parameters in every branch and the classifier.
        let n_branches = m.branches.len();
        for bi in 0..n_branches {
            for li in 0..m.branches[bi].layers.len() {
                let n_params = m.branches[bi].layers[li].params_mut().len();
                for pi in 0..n_params {
                    for i in [0usize, 1] {
                        let (orig, ana) = {
                            let p = &mut m.branches[bi].layers[li].params_mut()[pi];
                            if i >= p.value.data().len() {
                                continue;
                            }
                            (p.value.data()[i], p.grad.data()[i])
                        };
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig + eps;
                        let lp = loss_of(&mut m);
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig - eps;
                        let lm = loss_of(&mut m);
                        m.branches[bi].layers[li].params_mut()[pi].value.data_mut()[i] = orig;
                        let num = (lp - lm) / (2.0 * eps);
                        assert!(
                            (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                            "branch {bi} layer {li} param {pi}[{i}]: numeric {num} vs \
                             analytic {ana}"
                        );
                    }
                }
            }
        }
        for li in 0..m.classifier.len() {
            let n_params = m.classifier[li].params_mut().len();
            for pi in 0..n_params {
                let (orig, ana) = {
                    let p = &mut m.classifier[li].params_mut()[pi];
                    (p.value.data()[0], p.grad.data()[0])
                };
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig + eps;
                let lp = loss_of(&mut m);
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig - eps;
                let lm = loss_of(&mut m);
                m.classifier[li].params_mut()[pi].value.data_mut()[0] = orig;
                let num = (lp - lm) / (2.0 * eps);
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "classifier layer {li} param {pi}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// The shared-access inference DAG must agree with eval-mode
    /// training forward at the whole-model level (the per-layer
    /// agreement test lives in holo-nn).
    #[test]
    fn infer_path_matches_eval_forward() {
        let (x, y) = synthetic(60, 7);
        let mut m = WideDeepModel::new(layout(), 16, 0.2, 3);
        m.train(&x, &y, 10, 16, 0.01);
        let via_infer = m.forward_infer(&x);
        let via_forward = m.forward(&x, false);
        assert_eq!(via_infer, via_forward);
    }

    #[test]
    fn empty_prediction_is_empty() {
        let m = WideDeepModel::new(layout(), 8, 0.0, 1);
        let x = Matrix::zeros(0, m.layout().total_dim());
        assert!(m.predict_proba(&x).is_empty());
        assert!(m.scores(&x).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_panics() {
        let mut m = WideDeepModel::new(layout(), 8, 0.0, 1);
        let x = Matrix::zeros(0, m.layout().total_dim());
        m.train(&x, &[], 1, 4, 0.01);
    }
}
