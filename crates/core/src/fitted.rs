//! The fitted HoloDetect model: the reusable product of `fit`.
//!
//! [`FittedHoloDetect`] bundles the fitted representation `Q` (inside
//! the [`Pipeline`]), the trained wide-and-deep classifier `M`, the
//! Platt scaler of §4.2, and the holdout-tuned decision threshold. It
//! implements [`holo_eval::TrainedModel`], so `score` / `predict` can be
//! called repeatedly over arbitrary cell batches — from many threads —
//! without re-training, and it exposes [`FittedHoloDetect::refit_with`],
//! the explicit incremental hook the active-learning and self-training
//! strategies drive their labeling loops through.

use crate::model::WideDeepModel;
use crate::trainer::{Pipeline, TrainExample};
use holo_data::CellId;
use holo_eval::TrainedModel;
use holo_nn::{Matrix, PlattScaler};

/// A fitted HoloDetect model (any strategy).
pub struct FittedHoloDetect<'a> {
    method: &'static str,
    state: Option<TrainedState<'a>>,
}

struct TrainedState<'a> {
    pipeline: Pipeline<'a>,
    /// The training examples behind `model` — kept so `refit_with` can
    /// extend them.
    examples: Vec<TrainExample>,
    /// Calibration set (the §6.1 holdout).
    holdout: Vec<TrainExample>,
    /// A distinct weighted threshold-tuning set, or `None` when the
    /// holdout itself (unit weights) tunes the threshold.
    tune: Option<(Vec<TrainExample>, Vec<f64>)>,
    model: WideDeepModel,
    platt: PlattScaler,
    threshold: f64,
}

impl<'a> FittedHoloDetect<'a> {
    /// The degenerate model fitted from an empty training set: every
    /// cell scores 0 (no evidence of errors).
    pub(crate) fn degenerate(method: &'static str) -> Self {
        FittedHoloDetect { method, state: None }
    }

    /// Featurize → train → calibrate → tune the threshold. `tune` is a
    /// distinct weighted tuning set, or `None` to tune on the holdout
    /// itself (unit weights).
    pub(crate) fn train(
        method: &'static str,
        pipeline: Pipeline<'a>,
        examples: Vec<TrainExample>,
        holdout: Vec<TrainExample>,
        tune: Option<(Vec<TrainExample>, Vec<f64>)>,
    ) -> Self {
        let (x, y) = pipeline.featurize(&examples);
        let model = pipeline.train_model(&x, &y);
        // Featurize + score the holdout once; calibration and — when
        // the holdout doubles as the tuning set — threshold tuning
        // share the pass.
        let (platt, threshold) = if holdout.is_empty() {
            let platt = PlattScaler::identity();
            let threshold = match &tune {
                Some((t, w)) => pipeline.select_threshold_weighted(&model, &platt, t, w),
                None => f64::from(pipeline.cfg.decision_threshold),
            };
            (platt, threshold)
        } else {
            let (hx, htargets) = pipeline.featurize(&holdout);
            let scores = model.scores(&hx);
            let platt = pipeline.calibrate_scores(&scores, &htargets);
            let threshold = match &tune {
                Some((t, w)) => pipeline.select_threshold_weighted(&model, &platt, t, w),
                None => {
                    let probs: Vec<f32> = scores.iter().map(|&s| platt.prob(s)).collect();
                    let weights = vec![1.0; holdout.len()];
                    pipeline.select_threshold_probs(&probs, &htargets, &weights)
                }
            };
            (platt, threshold)
        };
        FittedHoloDetect {
            method,
            state: Some(TrainedState {
                pipeline,
                examples,
                holdout,
                tune,
                model,
                platt,
                threshold,
            }),
        }
    }

    /// The incremental hook: extend the training set and re-train the
    /// classifier (representation `Q` is reused, not re-fitted), then
    /// re-calibrate and re-tune. Iterative strategies (ActiveL's
    /// labeling loops, SemiL's pseudo-label rounds) are built on this,
    /// and it is the entry point for future online-learning work.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate model (fitted from an empty training
    /// set): it has no pipeline to retrain, and silently dropping the
    /// caller's labels would be worse. Fit with a non-empty `T` first.
    pub fn refit_with(self, extra: Vec<TrainExample>) -> Self {
        let Some(mut s) = self.state else {
            panic!(
                "refit_with on a degenerate {} model: it was fitted without training \
                 data and has no pipeline; fit with a non-empty training set first",
                self.method
            )
        };
        s.examples.extend(extra);
        Self::train(self.method, s.pipeline, s.examples, s.holdout, s.tune)
    }

    /// The method name (as the paper's tables print it).
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// The holdout-tuned decision threshold in calibrated-probability
    /// space.
    pub fn threshold(&self) -> f64 {
        self.state.as_ref().map_or(0.5, |s| s.threshold)
    }

    /// The underlying pipeline (`None` for the degenerate model).
    pub fn pipeline(&self) -> Option<&Pipeline<'a>> {
        self.state.as_ref().map(|s| &s.pipeline)
    }

    /// Number of training examples behind the current classifier.
    pub fn n_train_examples(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.examples.len())
    }

    /// Raw classifier margins `z_error − z_correct` for a cell batch —
    /// the uncalibrated scores the Platt scaler maps to probabilities.
    pub fn raw_scores(&self, cells: &[CellId]) -> Vec<f32> {
        match &self.state {
            None => vec![0.0; cells.len()],
            Some(s) => {
                if cells.is_empty() {
                    return Vec::new();
                }
                let x = s.pipeline.featurize_cells(cells);
                s.model.scores(&x)
            }
        }
    }

    /// Uncalibrated softmax error probabilities for pre-featurized rows
    /// — the hook iterative strategies poll between refits.
    pub fn proba_features(&self, x: &Matrix) -> Vec<f32> {
        match &self.state {
            None => vec![0.0; x.rows()],
            Some(s) => s.model.predict_proba(x),
        }
    }
}

impl TrainedModel for FittedHoloDetect<'_> {
    /// Platt-calibrated error probability per cell (§4.2).
    fn score(&self, cells: &[CellId]) -> Vec<f64> {
        match &self.state {
            None => vec![0.0; cells.len()],
            Some(s) => {
                if cells.is_empty() {
                    return Vec::new();
                }
                let x = s.pipeline.featurize_cells(cells);
                s.pipeline
                    .predict_proba(&s.model, &s.platt, &x)
                    .into_iter()
                    .map(f64::from)
                    .collect()
            }
        }
    }

    fn default_threshold(&self) -> f64 {
        self.threshold()
    }
}
