//! The fitted HoloDetect model: the reusable, persistable product of
//! `fit`.
//!
//! [`FittedHoloDetect`] wraps a [`ModelArtifact`] — the fully *owned*
//! bundle of everything fitting produced: the representation `Q`
//! (inside the [`Pipeline`], which owns a copy of the reference
//! dataset), the trained wide-and-deep classifier `M`, the Platt scaler
//! of §4.2, the holdout-tuned decision threshold, and the training
//! examples behind the classifier. Nothing borrows the fit context, so
//! the model is `'static`: it implements [`holo_eval::TrainedModel`],
//! scoring cell batches of **any** schema-compatible dataset — the fit
//! data or a CSV loaded long after — from many threads, without
//! re-training.
//!
//! Artifacts persist: [`FittedHoloDetect::save`] writes a versioned
//! binary file (hand-rolled codec, no registry dependencies) and
//! [`FittedHoloDetect::load`] restores it in a fresh process with
//! bitwise-identical scoring behaviour. Train once on a reference
//! sample; deploy the file; score incoming batches for the artifact's
//! whole life.
//!
//! [`FittedHoloDetect::refit_with`] is the explicit incremental hook the
//! active-learning and self-training strategies drive their labeling
//! loops through; on a degenerate model it returns a typed error rather
//! than panicking.

use crate::config::HoloDetectConfig;
use crate::model::{BranchStyle, WideDeepModel};
use crate::trainer::{Pipeline, TrainExample};
use holo_channel::AugmentStrategy;
use holo_data::{binio, CellId, Dataset, Label};
use holo_eval::{ModelError, TrainedModel};
use holo_features::Featurizer;
use holo_nn::{Matrix, Param, PlattScaler};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Artifact file magic (8 bytes).
const MAGIC: &[u8; 8] = b"HOLOARTF";
/// Current artifact format version.
const FORMAT_VERSION: u32 = 1;

/// A fitted HoloDetect model (any strategy).
pub struct FittedHoloDetect {
    method: &'static str,
    state: Option<ModelArtifact>,
}

/// The owned, serializable product of fitting: representation,
/// classifier, calibration, threshold, and the training examples behind
/// them (kept so [`FittedHoloDetect::refit_with`] can extend them).
pub struct ModelArtifact {
    pipeline: Pipeline,
    /// The training examples behind `model` — kept so `refit_with` can
    /// extend them.
    examples: Vec<TrainExample>,
    /// Calibration set (the §6.1 holdout).
    holdout: Vec<TrainExample>,
    /// A distinct weighted threshold-tuning set, or `None` when the
    /// holdout itself (unit weights) tunes the threshold.
    tune: Option<(Vec<TrainExample>, Vec<f64>)>,
    model: WideDeepModel,
    platt: PlattScaler,
    threshold: f64,
}

impl ModelArtifact {
    /// The pipeline (configuration + fitted representation `Q`).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The reference dataset the artifact was fitted over.
    pub fn reference(&self) -> &Dataset {
        self.pipeline.reference()
    }

    /// The holdout-tuned decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl FittedHoloDetect {
    /// The degenerate model fitted from an empty training set: every
    /// cell scores 0 (no evidence of errors).
    pub(crate) fn degenerate(method: &'static str) -> Self {
        FittedHoloDetect {
            method,
            state: None,
        }
    }

    /// Featurize → train → calibrate → tune the threshold. `tune` is a
    /// distinct weighted tuning set, or `None` to tune on the holdout
    /// itself (unit weights).
    pub(crate) fn train(
        method: &'static str,
        pipeline: Pipeline,
        examples: Vec<TrainExample>,
        holdout: Vec<TrainExample>,
        tune: Option<(Vec<TrainExample>, Vec<f64>)>,
    ) -> Self {
        let (x, y) = pipeline.featurize(&examples);
        let model = pipeline.train_model(&x, &y);
        // Featurize + score the holdout once; calibration and — when
        // the holdout doubles as the tuning set — threshold tuning
        // share the pass.
        let (platt, threshold) = if holdout.is_empty() {
            let platt = PlattScaler::identity();
            let threshold = match &tune {
                Some((t, w)) => pipeline.select_threshold_weighted(&model, &platt, t, w),
                None => f64::from(pipeline.cfg.decision_threshold),
            };
            (platt, threshold)
        } else {
            let (hx, htargets) = pipeline.featurize(&holdout);
            let scores = model.scores(&hx);
            let platt = pipeline.calibrate_scores(&scores, &htargets);
            let threshold = match &tune {
                Some((t, w)) => pipeline.select_threshold_weighted(&model, &platt, t, w),
                None => {
                    let probs: Vec<f32> = scores.iter().map(|&s| platt.prob(s)).collect();
                    let weights = vec![1.0; holdout.len()];
                    pipeline.select_threshold_probs(&probs, &htargets, &weights)
                }
            };
            (platt, threshold)
        };
        FittedHoloDetect {
            method,
            state: Some(ModelArtifact {
                pipeline,
                examples,
                holdout,
                tune,
                model,
                platt,
                threshold,
            }),
        }
    }

    /// The incremental hook: extend the training set and re-train the
    /// classifier (representation `Q` is reused, not re-fitted), then
    /// re-calibrate and re-tune. Iterative strategies (ActiveL's
    /// labeling loops, SemiL's pseudo-label rounds) are built on this,
    /// and it is the entry point for future online-learning work.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] when the model was fitted from an
    /// empty training set: it has no pipeline to retrain, and silently
    /// dropping the caller's labels would be worse. Fit with a non-empty
    /// `T` first.
    pub fn refit_with(self, extra: Vec<TrainExample>) -> Result<Self, ModelError> {
        let Some(mut s) = self.state else {
            return Err(ModelError::Degenerate {
                method: self.method.to_owned(),
            });
        };
        s.examples.extend(extra);
        Ok(Self::train(
            self.method,
            s.pipeline,
            s.examples,
            s.holdout,
            s.tune,
        ))
    }

    /// The method name (as the paper's tables print it).
    pub fn method(&self) -> &'static str {
        self.method
    }

    /// The holdout-tuned decision threshold in calibrated-probability
    /// space.
    pub fn threshold(&self) -> f64 {
        self.state.as_ref().map_or(0.5, |s| s.threshold)
    }

    /// The underlying artifact (`None` for the degenerate model).
    pub fn artifact(&self) -> Option<&ModelArtifact> {
        self.state.as_ref()
    }

    /// The underlying pipeline (`None` for the degenerate model).
    pub fn pipeline(&self) -> Option<&Pipeline> {
        self.state.as_ref().map(|s| &s.pipeline)
    }

    /// Number of training examples behind the current classifier.
    pub fn n_train_examples(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.examples.len())
    }

    /// Lifetime hit/miss/eviction counters of the featurizer's
    /// nearest-neighbour memo (all-zero for the degenerate model, which
    /// has no featurizer). Surfaced per served model as the
    /// `holo_features_nn_cache_*` metrics families.
    pub fn nn_cache_stats(&self) -> holo_features::CacheStats {
        self.state
            .as_ref()
            .map(|s| s.pipeline.featurizer.nn_cache_stats())
            .unwrap_or_default()
    }

    /// Raw classifier margins `z_error − z_correct` for a cell batch of
    /// `data` — the uncalibrated scores the Platt scaler maps to
    /// probabilities. Validates `data` and `cells` like
    /// [`TrainedModel::score_batch`]: incompatible inputs are typed
    /// errors, never garbage margins.
    pub fn raw_scores(&self, data: &Dataset, cells: &[CellId]) -> Result<Vec<f32>, ModelError> {
        match &self.state {
            None => {
                ModelError::check_cells(data, cells)?;
                Ok(vec![0.0; cells.len()])
            }
            Some(s) => {
                ModelError::check_schema(s.pipeline.reference().schema(), data)?;
                ModelError::check_cells(data, cells)?;
                if cells.is_empty() {
                    return Ok(Vec::new());
                }
                let x = s.pipeline.featurize_cells(data, cells);
                Ok(s.model.scores(&x))
            }
        }
    }

    /// Uncalibrated softmax error probabilities for pre-featurized rows
    /// — the hook iterative strategies poll between refits.
    pub fn proba_features(&self, x: &Matrix) -> Vec<f32> {
        match &self.state {
            None => vec![0.0; x.rows()],
            Some(s) => s.model.predict_proba(x),
        }
    }

    /// Apply one reference-dataset delta to the fitted state in place
    /// of a refit: the owned representation `Q` (inside the featurizer)
    /// advances one epoch with the guarantee that scoring afterwards is
    /// bitwise-identical to a model whose count-based representation was
    /// rebuilt from scratch over the post-delta dataset (the classifier,
    /// calibration, and learned embeddings are frozen between refits —
    /// exactly what [`FittedHoloDetect::rebuild_representation_at`]
    /// reproduces).
    ///
    /// The stored training/holdout/tuning examples are maintained too,
    /// so [`FittedHoloDetect::refit_with`] stays valid after any delta
    /// sequence: a deleted tuple drops its examples, and examples behind
    /// it shift down with their rows.
    ///
    /// # Errors
    ///
    /// [`ModelError::Degenerate`] for a model with no fitted state;
    /// [`ModelError::Format`] for an inapplicable op (arity mismatch,
    /// row/attr out of bounds) — nothing is half-applied.
    pub fn apply_delta(&mut self, op: &holo_data::DeltaOp) -> Result<(), ModelError> {
        let Some(s) = &mut self.state else {
            return Err(ModelError::Degenerate {
                method: self.method.to_owned(),
            });
        };
        s.pipeline
            .featurizer
            .apply_delta(op)
            .map_err(|e| ModelError::Format(e.to_string()))?;
        if let holo_data::DeltaOp::Delete { tuple } = op {
            let t = *tuple;
            let keep = |e: &TrainExample| e.cell.t() != t;
            let shift = |e: &mut TrainExample| {
                if e.cell.t() > t {
                    e.cell = CellId::new(e.cell.t() - 1, e.cell.a());
                }
            };
            s.examples.retain(keep);
            s.examples.iter_mut().for_each(shift);
            s.holdout.retain(keep);
            s.holdout.iter_mut().for_each(shift);
            if let Some((tune, weights)) = &mut s.tune {
                let mut kept = Vec::with_capacity(weights.len());
                let mut i = 0;
                tune.retain(|e| {
                    let k = keep(e);
                    if k {
                        kept.push(weights[i]);
                    }
                    i += 1;
                    k
                });
                tune.iter_mut().for_each(shift);
                *weights = kept;
            }
        }
        Ok(())
    }

    /// Override the worker-thread count used by subsequent refits
    /// (featurization micro-batches and the sharded SGD loop both read
    /// `cfg.threads`). A no-op for the degenerate model. Thread count
    /// never changes scores: the trainer's shard decomposition is fixed,
    /// so N-thread refit is bitwise-equal to single-thread.
    pub fn set_threads(&mut self, threads: usize) {
        if let Some(s) = &mut self.state {
            s.pipeline.cfg.threads = threads.max(1);
        }
    }

    /// Incrementally refresh the representation's skip-gram embeddings
    /// with `rows` (delta tuples in schema order): new tokens join the
    /// vocabularies at deterministically seeded positions, then a
    /// bounded `epochs`-pass SGNS update runs over the delta corpora
    /// only. Cheap relative to a full re-fit and deterministic for a
    /// given (state, delta, epochs). Returns `true` when any embedding
    /// table changed (stale NN-cache entries are dropped).
    ///
    /// # Errors
    /// [`ModelError::Degenerate`] for a model with no fitted state.
    pub fn refresh_embeddings(
        &mut self,
        rows: &[Vec<String>],
        epochs: usize,
    ) -> Result<bool, ModelError> {
        let Some(s) = &mut self.state else {
            return Err(ModelError::Degenerate {
                method: self.method.to_owned(),
            });
        };
        Ok(s.pipeline.featurizer.refresh_embeddings(rows, epochs))
    }

    /// Replace the representation's count-based state with one rebuilt
    /// from scratch over `d` (embeddings, classifier, and calibration
    /// untouched) — the reference implementation
    /// [`FittedHoloDetect::apply_delta`] is held bitwise-equal to, used
    /// by the streaming parity tests and benchmarks.
    ///
    /// # Errors
    /// [`ModelError::Degenerate`] for a model with no fitted state.
    pub fn rebuild_representation_at(&mut self, d: &Dataset) -> Result<(), ModelError> {
        let Some(s) = &mut self.state else {
            return Err(ModelError::Degenerate {
                method: self.method.to_owned(),
            });
        };
        s.pipeline.featurizer = s.pipeline.featurizer.rebuilt_at(d);
        Ok(())
    }

    /// Structural health of the current reference: (mean violations per
    /// tuple, violating-tuple fraction). `(0.0, 0.0)` without
    /// constraints or fitted state.
    pub fn violation_stats(&self) -> (f64, f64) {
        self.state
            .as_ref()
            .map_or((0.0, 0.0), |s| s.pipeline.featurizer.violation_stats())
    }

    /// Total violations of reference tuple `t` across all constraints.
    pub fn tuple_violations(&self, t: usize) -> u32 {
        self.state
            .as_ref()
            .map_or(0, |s| s.pipeline.featurizer.tuple_violations(t))
    }

    /// Persist the fitted model to a versioned binary artifact file.
    /// The artifact is self-contained: reloading it in a fresh process
    /// ([`FittedHoloDetect::load`]) reproduces scores bit for bit.
    pub fn save(&self, path: &Path) -> Result<(), ModelError> {
        let mut w = BufWriter::new(File::create(path)?);
        self.save_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// [`FittedHoloDetect::save`] into any writer (the streaming refit
    /// path snapshots models into memory without touching disk).
    pub fn save_to<W: Write>(&self, w: &mut W) -> Result<(), ModelError> {
        let mut w = w;
        w.write_all(MAGIC)?;
        binio::write_u32(&mut w, FORMAT_VERSION)?;
        binio::write_str(&mut w, self.method)?;
        binio::write_bool(&mut w, self.state.is_some())?;
        if let Some(s) = &self.state {
            write_config(&mut w, &s.pipeline.cfg)?;
            binio::write_u64(&mut w, s.pipeline.seed)?;
            s.pipeline.featurizer.write_to(&mut w)?;
            write_examples(&mut w, &s.examples)?;
            write_examples(&mut w, &s.holdout)?;
            binio::write_bool(&mut w, s.tune.is_some())?;
            if let Some((t, weights)) = &s.tune {
                write_examples(&mut w, t)?;
                binio::write_usize(&mut w, weights.len())?;
                for &x in weights {
                    binio::write_f64(&mut w, x)?;
                }
            }
            write_model_params(&mut w, &s.model)?;
            binio::write_f32(&mut w, s.platt.a)?;
            binio::write_f32(&mut w, s.platt.b)?;
            binio::write_f64(&mut w, s.threshold)?;
        }
        Ok(())
    }

    /// Load an artifact written by [`FittedHoloDetect::save`].
    ///
    /// # Errors
    ///
    /// [`ModelError::Format`] for a wrong magic, an unsupported format
    /// version, or internally inconsistent contents;
    /// [`ModelError::Io`] for read failures (including truncation).
    pub fn load(path: &Path) -> Result<Self, ModelError> {
        let mut r = BufReader::new(File::open(path)?);
        Self::load_from(&mut r)
    }

    /// [`FittedHoloDetect::load`] from any reader (the streaming refit
    /// path clones models through an in-memory snapshot).
    pub fn load_from<R: Read>(r: &mut R) -> Result<Self, ModelError> {
        let mut r = r;
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ModelError::Format("not a HoloDetect artifact file".into()));
        }
        let version = binio::read_u32(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(ModelError::Format(format!(
                "unsupported artifact format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let method = intern_method(&binio::read_str(&mut r)?)?;
        if !binio::read_bool(&mut r)? {
            return Ok(FittedHoloDetect::degenerate(method));
        }
        let cfg = read_config(&mut r)?;
        let seed = binio::read_u64(&mut r)?;
        let featurizer = Featurizer::read_from(&mut r)?;
        let pipeline = Pipeline::from_parts(cfg, featurizer, seed);
        let examples = read_examples(&mut r)?;
        let holdout = read_examples(&mut r)?;
        let tune = if binio::read_bool(&mut r)? {
            let t = read_examples(&mut r)?;
            let n = binio::read_usize(&mut r)?;
            let mut weights = Vec::with_capacity(binio::bounded_cap(n, 8));
            for _ in 0..n {
                weights.push(binio::read_f64(&mut r)?);
            }
            if weights.len() != t.len() {
                return Err(ModelError::Format("tuning weights arity mismatch".into()));
            }
            Some((t, weights))
        } else {
            None
        };
        // Rebuild the model skeleton exactly as `train_model` does, then
        // overwrite every parameter with the saved weights.
        let mut model = WideDeepModel::with_branch_style(
            pipeline.featurizer.layout().clone(),
            pipeline.cfg.hidden_dim,
            pipeline.cfg.dropout,
            seed,
            pipeline.cfg.branch_style,
        );
        read_model_params(&mut r, &mut model)?;
        let platt = PlattScaler {
            a: binio::read_f32(&mut r)?,
            b: binio::read_f32(&mut r)?,
        };
        let threshold = binio::read_f64(&mut r)?;
        Ok(FittedHoloDetect {
            method,
            state: Some(ModelArtifact {
                pipeline,
                examples,
                holdout,
                tune,
                model,
                platt,
                threshold,
            }),
        })
    }
}

impl TrainedModel for FittedHoloDetect {
    /// Platt-calibrated error probability per cell of `data` (§4.2) —
    /// the fit-time dataset or any schema-compatible batch.
    fn score_batch(&self, data: &Dataset, cells: &[CellId]) -> Result<Vec<f64>, ModelError> {
        match &self.state {
            None => {
                ModelError::check_cells(data, cells)?;
                Ok(vec![0.0; cells.len()])
            }
            Some(s) => {
                ModelError::check_schema(s.pipeline.reference().schema(), data)?;
                ModelError::check_cells(data, cells)?;
                if cells.is_empty() {
                    return Ok(Vec::new());
                }
                let x = s.pipeline.featurize_cells(data, cells);
                Ok(s.pipeline
                    .predict_proba(&s.model, &s.platt, &x)
                    .into_iter()
                    .map(f64::from)
                    .collect())
            }
        }
    }

    fn default_threshold(&self) -> f64 {
        self.threshold()
    }
}

/// Map a deserialized method name back to the `'static` strategy name.
fn intern_method(name: &str) -> Result<&'static str, ModelError> {
    for known in ["AUG", "SuperL", "SemiL", "ActiveL", "Resampling"] {
        if name == known {
            return Ok(known);
        }
    }
    Err(ModelError::Format(format!(
        "unknown method name {name:?} in artifact"
    )))
}

fn write_config<W: Write>(w: &mut W, cfg: &HoloDetectConfig) -> io::Result<()> {
    binio::write_usize(w, cfg.epochs)?;
    binio::write_usize(w, cfg.batch_size)?;
    binio::write_f32(w, cfg.lr)?;
    binio::write_usize(w, cfg.hidden_dim)?;
    binio::write_f32(w, cfg.dropout)?;
    binio::write_f64(w, cfg.holdout_frac)?;
    binio::write_usize(w, cfg.platt_epochs)?;
    binio::write_f32(w, cfg.decision_threshold)?;
    binio::write_f64(w, cfg.augment.alpha)?;
    binio::write_f64(w, cfg.augment.temperature)?;
    binio::write_u8(
        w,
        match cfg.augment.strategy {
            AugmentStrategy::Learned => 0,
            AugmentStrategy::NoPolicy => 1,
            AugmentStrategy::Random => 2,
        },
    )?;
    binio::write_u64(w, cfg.augment.seed)?;
    binio::write_usize(w, cfg.augment.max_attempt_factor)?;
    cfg.features.write_to(w)?;
    binio::write_usize(w, cfg.min_error_examples)?;
    binio::write_u8(
        w,
        match cfg.branch_style {
            BranchStyle::Highway => 0,
            BranchStyle::PlainDense => 1,
        },
    )?;
    binio::write_usize(w, cfg.threads)?;
    binio::write_u64(w, cfg.seed)
}

fn read_config<R: Read>(r: &mut R) -> Result<HoloDetectConfig, ModelError> {
    let epochs = binio::read_usize(r)?;
    let batch_size = binio::read_usize(r)?;
    let lr = binio::read_f32(r)?;
    let hidden_dim = binio::read_usize(r)?;
    let dropout = binio::read_f32(r)?;
    let holdout_frac = binio::read_f64(r)?;
    let platt_epochs = binio::read_usize(r)?;
    let decision_threshold = binio::read_f32(r)?;
    // Struct literal fields evaluate in source order, matching the
    // write order above.
    let augment = holo_channel::AugmentConfig {
        alpha: binio::read_f64(r)?,
        temperature: binio::read_f64(r)?,
        strategy: match binio::read_u8(r)? {
            0 => AugmentStrategy::Learned,
            1 => AugmentStrategy::NoPolicy,
            2 => AugmentStrategy::Random,
            t => return Err(ModelError::Format(format!("bad augment strategy tag {t}"))),
        },
        seed: binio::read_u64(r)?,
        max_attempt_factor: binio::read_usize(r)?,
    };
    let features = holo_features::FeatureConfig::read_from(r)?;
    let min_error_examples = binio::read_usize(r)?;
    let branch_style = match binio::read_u8(r)? {
        0 => BranchStyle::Highway,
        1 => BranchStyle::PlainDense,
        t => return Err(ModelError::Format(format!("bad branch style tag {t}"))),
    };
    Ok(HoloDetectConfig {
        epochs,
        batch_size,
        lr,
        hidden_dim,
        dropout,
        holdout_frac,
        platt_epochs,
        decision_threshold,
        augment,
        features,
        min_error_examples,
        branch_style,
        threads: binio::read_usize(r)?,
        seed: binio::read_u64(r)?,
    })
}

fn write_examples<W: Write>(w: &mut W, xs: &[TrainExample]) -> io::Result<()> {
    binio::write_usize(w, xs.len())?;
    for e in xs {
        binio::write_u32(w, e.cell.tuple)?;
        binio::write_u32(w, e.cell.attr)?;
        binio::write_str(w, &e.value)?;
        binio::write_u8(w, u8::from(e.label.is_error()))?;
    }
    Ok(())
}

fn read_examples<R: Read>(r: &mut R) -> io::Result<Vec<TrainExample>> {
    let n = binio::read_usize(r)?;
    let mut out = Vec::with_capacity(binio::bounded_cap(n, 48));
    for _ in 0..n {
        let tuple = binio::read_u32(r)? as usize;
        let attr = binio::read_u32(r)? as usize;
        let value = binio::read_str(r)?;
        let label = match binio::read_u8(r)? {
            0 => Label::Correct,
            1 => Label::Error,
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad label tag {t}"),
                ))
            }
        };
        out.push(TrainExample {
            cell: CellId::new(tuple, attr),
            value,
            label,
        });
    }
    Ok(out)
}

fn write_model_params<W: Write>(w: &mut W, model: &WideDeepModel) -> io::Result<()> {
    let mut n = 0usize;
    model.for_each_param(|_| n += 1);
    binio::write_usize(w, n)?;
    let mut res: io::Result<()> = Ok(());
    model.for_each_param(|p| {
        if res.is_err() {
            return;
        }
        res = (|| {
            binio::write_usize(w, p.value.rows())?;
            binio::write_usize(w, p.value.cols())?;
            binio::write_f32_slice(w, p.value.data())
        })();
    });
    res
}

#[allow(clippy::needless_range_loop)]
fn read_model_params<R: Read>(r: &mut R, model: &mut WideDeepModel) -> Result<(), ModelError> {
    let mut expected = 0usize;
    model.for_each_param(|_| expected += 1);
    let n = binio::read_usize(r)?;
    if n != expected {
        return Err(ModelError::Format(format!(
            "artifact has {n} parameter tensors, model skeleton expects {expected}"
        )));
    }
    let mut res: Result<(), ModelError> = Ok(());
    model.for_each_param_mut(|p| {
        if res.is_err() {
            return;
        }
        res = (|| {
            let rows = binio::read_usize(r)?;
            let cols = binio::read_usize(r)?;
            let data = binio::read_f32_slice(r)?;
            if (rows, cols) != p.value.shape() || data.len() != rows * cols {
                return Err(ModelError::Format(format!(
                    "parameter shape {rows}x{cols} disagrees with skeleton {:?}",
                    p.value.shape()
                )));
            }
            *p = Param::new(Matrix::from_vec(rows, cols, data));
            Ok(())
        })();
    });
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::HoloDetect;
    use holo_data::{DatasetBuilder, GroundTruth, Schema};
    use holo_eval::FitContext;

    fn world() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..25 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        (dirty, truth)
    }

    fn fitted(dirty: &Dataset, truth: &GroundTruth) -> FittedHoloDetect {
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 10;
        let train = truth.label_tuples(dirty, &(0..20).collect::<Vec<_>>());
        let ctx = FitContext {
            dirty,
            train: &train,
            sampling: None,
            constraints: &[],
            seed: 3,
        };
        HoloDetect::new(cfg).fit_model(&ctx)
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holo-fitted-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_is_bitwise_identical() {
        let (dirty, truth) = world();
        let model = fitted(&dirty, &truth);
        let cells: Vec<CellId> = dirty.cell_ids().take(40).collect();
        let before = model.score_batch(&dirty, &cells).unwrap();

        let path = tmp_path("roundtrip.bin");
        model.save(&path).unwrap();
        let loaded = FittedHoloDetect::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.method(), model.method());
        assert_eq!(loaded.threshold(), model.threshold());
        assert_eq!(loaded.n_train_examples(), model.n_train_examples());
        let after = loaded.score_batch(&dirty, &cells).unwrap();
        assert_eq!(
            before.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            after.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "reloaded artifact scores are not bitwise-identical"
        );
    }

    #[test]
    fn degenerate_model_roundtrips_and_refit_errors() {
        let deg = FittedHoloDetect::degenerate("AUG");
        let path = tmp_path("degenerate.bin");
        deg.save(&path).unwrap();
        let loaded = FittedHoloDetect::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.artifact().is_none());
        assert_eq!(loaded.method(), "AUG");
        // refit_with on a degenerate model is a typed error, not a panic.
        let Err(err) = loaded.refit_with(Vec::new()) else {
            panic!("degenerate refit should error")
        };
        assert!(matches!(err, ModelError::Degenerate { .. }));
    }

    #[test]
    fn load_rejects_wrong_magic_and_version() {
        let path = tmp_path("badmagic.bin");
        std::fs::write(&path, b"NOTANARTIFACT___").unwrap();
        assert!(matches!(
            FittedHoloDetect::load(&path),
            Err(ModelError::Format(_))
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        binio::write_u32(&mut buf, FORMAT_VERSION + 9).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let Err(err) = FittedHoloDetect::load(&path) else {
            panic!("future version should be rejected")
        };
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn schema_mismatch_scores_are_an_error() {
        let (dirty, truth) = world();
        let model = fitted(&dirty, &truth);
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "Town"]));
        b.push_row(&["60612", "Chicago"]);
        let other = b.build();
        assert!(matches!(
            model.score_batch(&other, &[CellId::new(0, 0)]),
            Err(ModelError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn apply_delta_scores_bitwise_equal_to_rebuilt_representation() {
        use holo_data::DeltaOp;
        let (dirty, truth) = world();
        let live = fitted(&dirty, &truth);
        // Two independent copies via an in-memory snapshot (also
        // exercising save_to/load_from).
        let mut buf = Vec::new();
        live.save_to(&mut buf).unwrap();
        let mut live = FittedHoloDetect::load_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let mut baseline = FittedHoloDetect::load_from(&mut std::io::Cursor::new(&buf)).unwrap();

        let ops = [
            DeltaOp::Append {
                values: vec!["60612".into(), "Chicagoland".into()],
            },
            DeltaOp::Append {
                values: vec!["94103".into(), "SF".into()],
            },
            DeltaOp::Update {
                tuple: 0,
                attr: 1,
                value: "Chicago".into(),
            },
            DeltaOp::Delete { tuple: 7 },
        ];
        let mut replica = baseline.artifact().unwrap().reference().clone();
        for op in &ops {
            live.apply_delta(op).unwrap();
            replica.apply_delta(op).unwrap();
        }
        baseline.rebuild_representation_at(&replica).unwrap();

        // Scoring the grown reference and a foreign batch must agree bit
        // for bit between incremental maintenance and a full rebuild.
        let reference = live.artifact().unwrap().reference().clone();
        let cells: Vec<CellId> = reference.cell_ids().collect();
        let a = live.score_batch(&reference, &cells).unwrap();
        let b = baseline.score_batch(&reference, &cells).unwrap();
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
        let mut fb = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        fb.push_row(&["60612", "Chicagoland"]);
        fb.push_row(&["94103", "Berkeley"]);
        let foreign = fb.build();
        let fc: Vec<CellId> = foreign.cell_ids().collect();
        let a = live.score_batch(&foreign, &fc).unwrap();
        let b = baseline.score_batch(&foreign, &fc).unwrap();
        assert_eq!(
            a.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn deltas_change_scores_and_refit_survives_deletes() {
        use holo_data::DeltaOp;
        let (dirty, truth) = world();
        let mut model = fitted(&dirty, &truth);
        let n_examples = model.n_train_examples();

        // A foreign tuple whose value is unseen at fit time…
        let mut fb = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        fb.push_row(&["60612", "Streeterville"]);
        let foreign = fb.build();
        let before = model.score_batch(&foreign, &[CellId::new(0, 1)]).unwrap()[0];
        // …streamed into the reference thirty times becomes normal.
        for _ in 0..30 {
            model
                .apply_delta(&DeltaOp::Append {
                    values: vec!["60612".into(), "Streeterville".into()],
                })
                .unwrap();
        }
        let after = model.score_batch(&foreign, &[CellId::new(0, 1)]).unwrap()[0];
        assert_ne!(
            before.to_bits(),
            after.to_bits(),
            "ingest must be visible in scores"
        );

        // Deleting training rows drops their examples and shifts the
        // rest; refit_with still runs on the maintained example set.
        model.apply_delta(&DeltaOp::Delete { tuple: 0 }).unwrap();
        model.apply_delta(&DeltaOp::Delete { tuple: 0 }).unwrap();
        assert!(model.n_train_examples() < n_examples);
        let refitted = model.refit_with(Vec::new()).unwrap();
        let cells: Vec<CellId> = refitted
            .artifact()
            .unwrap()
            .reference()
            .cell_ids()
            .take(20)
            .collect();
        let reference = refitted.artifact().unwrap().reference().clone();
        let scores = refitted.score_batch(&reference, &cells).unwrap();
        assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn degenerate_apply_delta_is_typed() {
        let mut deg = FittedHoloDetect::degenerate("AUG");
        assert!(matches!(
            deg.apply_delta(&holo_data::DeltaOp::Delete { tuple: 0 }),
            Err(ModelError::Degenerate { .. })
        ));
    }

    #[test]
    fn scores_unseen_dataset_via_reference_statistics() {
        let (dirty, truth) = world();
        let model = fitted(&dirty, &truth);
        // A fresh batch the model never saw, same schema.
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        b.push_row(&["60612", "Chicago"]); // consistent with reference
        b.push_row(&["60612", "Chixcago"]); // typo'd unseen value
        let batch = b.build();
        let cells: Vec<CellId> = batch.cell_ids().collect();
        let scores = model.score_batch(&batch, &cells).unwrap();
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
        // The typo'd city must look more suspicious than the clean one.
        assert!(
            scores[3] > scores[1],
            "typo {:.4} should outscore clean {:.4}",
            scores[3],
            scores[1]
        );
    }
}
