//! # holodetect
//!
//! The paper's primary contribution: a few-shot, weakly-supervised error
//! detection framework (Figure 1).
//!
//! Given a dirty dataset `D`, a small training set `T`, and (optionally)
//! denial constraints `Σ`, HoloDetect:
//!
//! 1. learns the noisy channel `H = (Φ, Π)` from the error examples in
//!    `T` — topped up by the Naive-Bayes weak-supervision model when `T`
//!    contains too few errors (§5.4),
//! 2. **augments** the training data with synthetic errors drawn from
//!    `H` until classes balance (Algorithm 4),
//! 3. featurizes every example with the multi-granularity representation
//!    `Q` (attribute / tuple / dataset contexts, Table 7),
//! 4. trains the wide-and-deep model of Figure 7 — highway branches over
//!    the embeddings, jointly with the two-layer classifier `M` — using
//!    ADAM,
//! 5. calibrates confidences with Platt scaling on a held-out slice of
//!    `T` (§4.2), and
//! 6. classifies every remaining cell as *correct* or *error*.
//!
//! Besides the augmentation pipeline ([`strategies::Strategy::Augmentation`]),
//! the crate implements the paper's comparison training paradigms:
//! plain supervision, self-training (SemiL), uncertainty-sampling active
//! learning (ActiveL), and minority oversampling (Resampling).
//!
//! The API is staged — fit once on a reference sample, then score any
//! number of batches (of the fit data *or* datasets loaded later), and
//! persist the artifact across process restarts:
//!
//! ```no_run
//! use holodetect::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
//! use holo_eval::{Detector, FitContext, TrainedModel};
//! use std::path::Path;
//! # fn ctx() -> FitContext<'static> { unimplemented!() }
//! # fn batch() -> holo_data::Dataset { unimplemented!() }
//! # fn cells() -> Vec<holo_data::CellId> { unimplemented!() }
//!
//! let detector = HoloDetect::new(HoloDetectConfig::default());
//! let model = detector.fit_model(&ctx());          // train once
//! model.save(Path::new("detector.holoart"))?;      // deploy the file
//!
//! // …later, in another process:
//! let model = FittedHoloDetect::load(Path::new("detector.holoart"))?;
//! let incoming = batch();                          // unseen data, same schema
//! let probs = model.score_batch(&incoming, &cells())?;
//! let labels = model.predict_batch(&incoming, &cells(), model.default_threshold())?;
//! # Ok::<(), holo_eval::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod detector;
pub mod fitted;
pub mod model;
pub mod strategies;
pub mod trainer;

pub use config::HoloDetectConfig;
pub use detector::HoloDetect;
pub use fitted::{FittedHoloDetect, ModelArtifact};
pub use holo_features::CacheStats;
pub use model::{BranchStyle, WideDeepModel};
pub use strategies::Strategy;
