//! # holodetect
//!
//! The paper's primary contribution: a few-shot, weakly-supervised error
//! detection framework (Figure 1).
//!
//! Given a dirty dataset `D`, a small training set `T`, and (optionally)
//! denial constraints `Σ`, HoloDetect:
//!
//! 1. learns the noisy channel `H = (Φ, Π)` from the error examples in
//!    `T` — topped up by the Naive-Bayes weak-supervision model when `T`
//!    contains too few errors (§5.4),
//! 2. **augments** the training data with synthetic errors drawn from
//!    `H` until classes balance (Algorithm 4),
//! 3. featurizes every example with the multi-granularity representation
//!    `Q` (attribute / tuple / dataset contexts, Table 7),
//! 4. trains the wide-and-deep model of Figure 7 — highway branches over
//!    the embeddings, jointly with the two-layer classifier `M` — using
//!    ADAM,
//! 5. calibrates confidences with Platt scaling on a held-out slice of
//!    `T` (§4.2), and
//! 6. classifies every remaining cell as *correct* or *error*.
//!
//! Besides the augmentation pipeline ([`strategies::Strategy::Augmentation`]),
//! the crate implements the paper's comparison training paradigms:
//! plain supervision, self-training (SemiL), uncertainty-sampling active
//! learning (ActiveL), and minority oversampling (Resampling).
//!
//! ```no_run
//! use holodetect::{HoloDetect, HoloDetectConfig};
//! use holo_eval::{DetectionContext, Detector};
//! # fn ctx() -> DetectionContext<'static> { unimplemented!() }
//!
//! let mut detector = HoloDetect::new(HoloDetectConfig::default());
//! let labels = detector.detect(&ctx());
//! ```

pub mod config;
pub mod detector;
pub mod model;
pub mod strategies;
pub mod trainer;

pub use config::HoloDetectConfig;
pub use detector::HoloDetect;
pub use model::{BranchStyle, WideDeepModel};
pub use strategies::Strategy;
