//! End-to-end configuration.

use crate::model::BranchStyle;
use holo_channel::AugmentConfig;
use holo_features::FeatureConfig;

/// Hyper-parameters for the full HoloDetect pipeline.
///
/// The paper trains "for 500 epochs with a batch-size of five examples";
/// the defaults here use larger batches and fewer epochs, which reach the
/// same loss basin in a fraction of the wall-clock on this pure-Rust
/// substrate (the `paper_faithful` constructor restores the original
/// schedule).
#[derive(Debug, Clone)]
pub struct HoloDetectConfig {
    /// Training epochs for the joint model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// ADAM learning rate.
    pub lr: f32,
    /// Hidden width of the two-layer classifier `M`.
    pub hidden_dim: usize,
    /// Dropout probability on the joint representation (Figure 2C).
    pub dropout: f32,
    /// Fraction of `T` held out for Platt scaling and tuning (§4.2/§6.1:
    /// 10%).
    pub holdout_frac: f64,
    /// Platt-scaling epochs (paper: 100).
    pub platt_epochs: usize,
    /// Probability threshold above which a cell is declared an error.
    pub decision_threshold: f32,
    /// Augmentation settings (Algorithm 4).
    pub augment: AugmentConfig,
    /// Representation settings (Table 7).
    pub features: FeatureConfig,
    /// Minimum error examples in `T` before the Naive-Bayes
    /// weak-supervision harvester kicks in (§5.4).
    pub min_error_examples: usize,
    /// Learnable-branch architecture (Figure 2B vs a plain MLP; the
    /// `ablation_highway` experiment compares them).
    pub branch_style: BranchStyle,
    /// Worker threads for featurization.
    pub threads: usize,
    /// Base seed for model init / shuffling (combined with the run seed).
    pub seed: u64,
}

impl Default for HoloDetectConfig {
    fn default() -> Self {
        HoloDetectConfig {
            epochs: 80,
            batch_size: 32,
            lr: 0.005,
            hidden_dim: 32,
            dropout: 0.2,
            holdout_frac: 0.1,
            platt_epochs: 100,
            decision_threshold: 0.5,
            augment: AugmentConfig::default(),
            features: FeatureConfig::default(),
            min_error_examples: 10,
            branch_style: BranchStyle::Highway,
            threads: default_threads(),
            seed: 7,
        }
    }
}

impl HoloDetectConfig {
    /// The paper's exact training schedule (§6.1): 500 epochs, batch 5.
    pub fn paper_faithful() -> Self {
        HoloDetectConfig {
            epochs: 500,
            batch_size: 5,
            ..Self::default()
        }
    }

    /// A small/fast configuration for tests and examples.
    pub fn fast() -> Self {
        HoloDetectConfig {
            epochs: 40,
            hidden_dim: 16,
            features: FeatureConfig::fast(),
            ..Self::default()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = HoloDetectConfig::default();
        assert!(c.epochs > 0);
        assert!((0.0..1.0).contains(&c.dropout));
        assert!((0.0..1.0).contains(&c.holdout_frac));
        assert!(c.threads >= 1);
    }

    #[test]
    fn paper_faithful_matches_section_6_1() {
        let c = HoloDetectConfig::paper_faithful();
        assert_eq!(c.epochs, 500);
        assert_eq!(c.batch_size, 5);
        assert_eq!(c.platt_epochs, 100);
    }

    #[test]
    fn fast_is_smaller() {
        let fast = HoloDetectConfig::fast();
        let full = HoloDetectConfig::default();
        assert!(fast.epochs <= full.epochs);
        assert!(fast.features.embed.dim <= full.features.embed.dim);
    }
}
