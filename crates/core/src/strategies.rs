//! Training strategies: AUG plus the comparison paradigms of §6.1.
//!
//! Every strategy is a different way of *fitting* — they all produce a
//! [`FittedHoloDetect`] and never touch evaluation cells. The iterative
//! paradigms (SemiL, ActiveL) run their labeling loops through the
//! fitted model's explicit [`FittedHoloDetect::refit_with`] hook rather
//! than hiding retraining inside a one-shot detect call.

use crate::fitted::FittedHoloDetect;
use crate::trainer::{Pipeline, TrainExample};
use holo_data::{CellId, Label, TrainingSet};
use holo_eval::FitContext;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the model is trained.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Data augmentation (the paper's AUG). `target_ratio` forces a
    /// specific post-augmentation error ratio (Figure 6); `None` balances
    /// classes per Algorithm 4.
    Augmentation {
        /// Forced error ratio, or `None` for class balance.
        target_ratio: Option<f64>,
    },
    /// Train on `T` only (SuperL).
    Supervised,
    /// Self-training \[64\] (SemiL): iteratively add high-confidence
    /// pseudo-labels from the unlabeled pool.
    SemiSupervised {
        /// Self-training rounds.
        rounds: usize,
        /// Minimum confidence to accept a pseudo-label.
        confidence: f32,
        /// Cap on pseudo-labels added per round.
        max_per_round: usize,
    },
    /// Uncertainty-sampling active learning \[57\] (ActiveL).
    ActiveLearning {
        /// Number of labeling loops `k`.
        loops: usize,
        /// Labels acquired per loop (paper: 50).
        per_loop: usize,
    },
    /// Minority-class oversampling, the traditional imbalance remedy
    /// compared against in Table 3.
    Resampling,
}

impl Strategy {
    /// The method name as the paper's tables print it.
    pub fn method_name(&self) -> &'static str {
        match self {
            Strategy::Augmentation { .. } => "AUG",
            Strategy::Supervised => "SuperL",
            Strategy::SemiSupervised { .. } => "SemiL",
            Strategy::ActiveLearning { .. } => "ActiveL",
            Strategy::Resampling => "Resampling",
        }
    }

    /// The paper's ActiveL setting (k loops, 50 labels per loop).
    pub fn active(loops: usize) -> Self {
        Strategy::ActiveLearning {
            loops,
            per_loop: 50,
        }
    }

    /// The paper's SemiL setting.
    pub fn semi_default() -> Self {
        Strategy::SemiSupervised {
            rounds: 3,
            confidence: 0.95,
            max_per_round: 500,
        }
    }
}

/// Run the strategy-specific training pipeline, producing a reusable
/// fitted model. Consumes the pipeline (the fitted model owns it).
pub fn fit_strategy(
    strategy: &Strategy,
    pipeline: Pipeline,
    ctx: &FitContext<'_>,
) -> FittedHoloDetect {
    let method = strategy.method_name();
    if ctx.train.is_empty() {
        return FittedHoloDetect::degenerate(method);
    }
    let (train, hold) = pipeline.split_holdout(ctx.train);
    let holdout_examples = TrainExample::from_training_set(&hold);
    let mut examples = TrainExample::from_training_set(&train);

    match strategy {
        Strategy::Augmentation { target_ratio } => {
            let policy = pipeline.learn_channel(&train);
            examples.extend(pipeline.augment_examples(&train, &policy, *target_ratio));
            // Threshold tuning set: the natural holdout plus synthetic
            // errors generated from the holdout's correct cells, weighted
            // so the class masses match the error prior estimated from T.
            let mut tune = holdout_examples.clone();
            tune.extend(pipeline.augment_examples(&hold, &policy, None));
            let (p_t, n_t) = ctx.train.class_counts();
            let prior = (n_t as f64 / (p_t + n_t).max(1) as f64).max(0.002);
            let n_err = tune.iter().filter(|e| e.label.is_error()).count().max(1);
            let n_cor = (tune.len() - n_err.min(tune.len())).max(1);
            let weights: Vec<f64> = tune
                .iter()
                .map(|e| {
                    if e.label.is_error() {
                        prior / n_err as f64
                    } else {
                        (1.0 - prior) / n_cor as f64
                    }
                })
                .collect();
            FittedHoloDetect::train(
                method,
                pipeline,
                examples,
                holdout_examples,
                Some((tune, weights)),
            )
        }
        Strategy::Supervised => train_plain(method, pipeline, examples, holdout_examples),
        Strategy::Resampling => {
            let examples = resample(examples, pipeline.seed);
            train_plain(method, pipeline, examples, holdout_examples)
        }
        Strategy::SemiSupervised {
            rounds,
            confidence,
            max_per_round,
        } => semi_supervised(
            method,
            pipeline,
            examples,
            holdout_examples,
            ctx,
            *rounds,
            *confidence,
            *max_per_round,
        ),
        Strategy::ActiveLearning { loops, per_loop } => active_learning(
            method,
            pipeline,
            examples,
            holdout_examples,
            ctx,
            *loops,
            *per_loop,
        ),
    }
}

/// Train with the holdout doubling as the (unit-weight) tuning set.
fn train_plain(
    method: &'static str,
    pipeline: Pipeline,
    examples: Vec<TrainExample>,
    holdout: Vec<TrainExample>,
) -> FittedHoloDetect {
    FittedHoloDetect::train(method, pipeline, examples, holdout, None)
}

/// Oversample the minority (error) class by cycling its examples.
fn resample(mut examples: Vec<TrainExample>, seed: u64) -> Vec<TrainExample> {
    let errors: Vec<TrainExample> = examples
        .iter()
        .filter(|e| e.label.is_error())
        .cloned()
        .collect();
    let n_correct = examples.len() - errors.len();
    if errors.is_empty() || errors.len() >= n_correct {
        return examples;
    }
    let needed = n_correct - errors.len();
    for i in 0..needed {
        examples.push(errors[i % errors.len()].clone());
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x4e5));
    examples.shuffle(&mut rng);
    examples
}

#[allow(clippy::too_many_arguments)]
fn semi_supervised(
    method: &'static str,
    pipeline: Pipeline,
    base: Vec<TrainExample>,
    holdout: Vec<TrainExample>,
    ctx: &FitContext<'_>,
    rounds: usize,
    confidence: f32,
    max_per_round: usize,
) -> FittedHoloDetect {
    // The unlabeled pool: a deterministic sample of the dataset's cells
    // outside `T` (fitting never looks at evaluation batches).
    let mut pool: Vec<CellId> = ctx
        .dirty
        .cell_ids()
        .filter(|&c| !ctx.train.contains(c))
        .collect();
    let mut rng = StdRng::seed_from_u64(pipeline.seed.wrapping_add(0x5e81));
    pool.shuffle(&mut rng);
    pool.truncate((max_per_round * 4).max(1000).min(pool.len()));
    // Featurize against the pipeline's owned reference (identical to
    // ctx.dirty at fit time, and hits the aligned fast path).
    let pool_x = pipeline.featurize_cells(pipeline.reference(), &pool);

    let mut fitted = train_plain(method, pipeline, base, holdout);
    let mut claimed: std::collections::HashSet<CellId> = std::collections::HashSet::new();
    for _ in 0..rounds {
        let probs = fitted.proba_features(&pool_x);
        let mut acquired: Vec<TrainExample> = Vec::new();
        for (i, &p) in probs.iter().enumerate() {
            if acquired.len() >= max_per_round {
                break;
            }
            let cell = pool[i];
            if claimed.contains(&cell) {
                continue;
            }
            let label = if p >= confidence {
                Label::Error
            } else if p <= 1.0 - confidence {
                Label::Correct
            } else {
                continue;
            };
            claimed.insert(cell);
            acquired.push(TrainExample {
                cell,
                value: ctx.dirty.cell_value(cell).to_owned(),
                label,
            });
        }
        if acquired.is_empty() {
            break;
        }
        fitted = fitted
            .refit_with(acquired)
            .expect("refitting a freshly trained (non-degenerate) model");
    }
    fitted
}

fn active_learning(
    method: &'static str,
    pipeline: Pipeline,
    base: Vec<TrainExample>,
    holdout: Vec<TrainExample>,
    ctx: &FitContext<'_>,
    loops: usize,
    per_loop: usize,
) -> FittedHoloDetect {
    let empty = TrainingSet::new();
    let sampling: &TrainingSet = ctx.sampling.unwrap_or(&empty);
    // Featurize the sampling pool once; loops only refit and gather.
    let pool: Vec<&holo_data::LabeledCell> = sampling.examples().iter().collect();
    let pool_x = if pool.is_empty() {
        None
    } else {
        let cells: Vec<CellId> = pool.iter().map(|e| e.cell).collect();
        Some(pipeline.featurize_cells(pipeline.reference(), &cells))
    };

    let mut fitted = train_plain(method, pipeline, base, holdout);
    let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
    for _ in 0..loops {
        let Some(px) = &pool_x else { break };
        if used.len() >= pool.len() {
            break;
        }
        let probs = fitted.proba_features(px);
        // Most uncertain first.
        let mut order: Vec<usize> = (0..pool.len()).filter(|i| !used.contains(i)).collect();
        order.sort_by(|&a, &b| {
            let ua = (probs[a] - 0.5).abs();
            let ub = (probs[b] - 0.5).abs();
            ua.total_cmp(&ub)
        });
        let mut acquired = Vec::with_capacity(per_loop);
        for &i in order.iter().take(per_loop) {
            used.insert(i);
            let ex = pool[i];
            acquired.push(TrainExample {
                cell: ex.cell,
                value: ex.observed.clone(),
                label: ex.label(),
            });
        }
        fitted = fitted
            .refit_with(acquired)
            .expect("refitting a freshly trained (non-degenerate) model");
    }
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_match_paper() {
        assert_eq!(
            Strategy::Augmentation { target_ratio: None }.method_name(),
            "AUG"
        );
        assert_eq!(Strategy::Supervised.method_name(), "SuperL");
        assert_eq!(Strategy::semi_default().method_name(), "SemiL");
        assert_eq!(Strategy::active(5).method_name(), "ActiveL");
        assert_eq!(Strategy::Resampling.method_name(), "Resampling");
    }

    #[test]
    fn active_constructor_uses_50_labels() {
        if let Strategy::ActiveLearning { loops, per_loop } = Strategy::active(10) {
            assert_eq!(loops, 10);
            assert_eq!(per_loop, 50);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn resample_balances_classes() {
        let mk = |t: usize, label: Label| TrainExample {
            cell: CellId::new(t, 0),
            value: "v".into(),
            label,
        };
        let mut examples = vec![mk(0, Label::Error)];
        for t in 1..10 {
            examples.push(mk(t, Label::Correct));
        }
        let out = resample(examples, 1);
        let errors = out.iter().filter(|e| e.label.is_error()).count();
        assert_eq!(errors, 9);
        assert_eq!(out.len(), 18);
    }

    #[test]
    fn resample_noop_without_errors() {
        let examples = vec![TrainExample {
            cell: CellId::new(0, 0),
            value: "v".into(),
            label: Label::Correct,
        }];
        assert_eq!(resample(examples.clone(), 0), examples);
    }
}
