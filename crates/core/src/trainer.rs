//! The shared training pipeline: channel learning, augmentation,
//! featurization, joint training, and Platt calibration.

use crate::config::HoloDetectConfig;
use crate::model::{matrix_from_rows, WideDeepModel};
use holo_channel::{augment, augment_to_ratio, NaiveBayesRepair, Policy, RepairConfig};
use holo_constraints::DenialConstraint;
use holo_data::{CellId, Dataset, Label, TrainingSet};
use holo_features::Featurizer;
use holo_nn::{Matrix, PlattScaler};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One training example: a cell, the value to featurize it with (observed
/// or synthetic), and its label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainExample {
    /// The cell providing tuple context.
    pub cell: CellId,
    /// The value the cell is featurized with.
    pub value: String,
    /// Correct or error.
    pub label: Label,
}

impl TrainExample {
    /// Convert the labeled cells of `T` into train examples (observed
    /// values).
    pub fn from_training_set(t: &TrainingSet) -> Vec<TrainExample> {
        t.examples()
            .iter()
            .map(|ex| TrainExample {
                cell: ex.cell,
                value: ex.observed.clone(),
                label: ex.label(),
            })
            .collect()
    }
}

/// The fitted pipeline for one detection run. Fully owned — the
/// configuration, the representation model `Q`, and (inside the
/// featurizer) a copy of the reference dataset — so a fitted detector is
/// `'static`: it outlives the `HoloDetect` instance that created it
/// *and* the dataset it was fitted on, and can featurize cells of any
/// schema-compatible dataset handed in later.
pub struct Pipeline {
    /// Configuration (owned — cloned at fit time).
    pub cfg: HoloDetectConfig,
    /// The fitted representation model `Q` (owns the reference dataset).
    pub featurizer: Featurizer,
    /// The run seed (combined with `cfg.seed`).
    pub seed: u64,
}

impl Pipeline {
    /// Fit the representation over the dirty dataset (the pipeline keeps
    /// its own copy as the reference).
    pub fn fit(
        cfg: &HoloDetectConfig,
        dirty: &Dataset,
        constraints: &[DenialConstraint],
        run_seed: u64,
    ) -> Self {
        let featurizer = Featurizer::fit(dirty, constraints, cfg.features.clone());
        let seed = cfg.seed.wrapping_add(run_seed);
        Pipeline {
            cfg: cfg.clone(),
            featurizer,
            seed,
        }
    }

    /// Rebuild a pipeline from deserialized parts (artifact loading).
    pub(crate) fn from_parts(cfg: HoloDetectConfig, featurizer: Featurizer, seed: u64) -> Self {
        Pipeline {
            cfg,
            featurizer,
            seed,
        }
    }

    /// The reference dataset the pipeline was fitted over.
    pub fn reference(&self) -> &Dataset {
        self.featurizer.reference()
    }

    /// Split `T` into (train, holdout) after a seeded shuffle — the 10%
    /// holdout drives hyper-parameter decisions and Platt scaling (§6.1).
    pub fn split_holdout(&self, t: &TrainingSet) -> (TrainingSet, TrainingSet) {
        let mut examples = t.examples().to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x5111));
        examples.shuffle(&mut rng);
        let mut shuffled = TrainingSet::new();
        for ex in examples {
            shuffled.insert(ex);
        }
        shuffled.split_holdout(self.cfg.holdout_frac)
    }

    /// Learn the noisy channel from `T`'s error pairs, topping up with
    /// Naive-Bayes weak supervision when errors are scarce (§5.4).
    pub fn learn_channel(&self, t: &TrainingSet) -> Policy {
        let mut pairs = t.error_pairs();
        if pairs.len() < self.cfg.min_error_examples {
            let nb = NaiveBayesRepair::build(self.reference(), RepairConfig::default());
            pairs.extend(nb.harvest_examples(self.reference()));
        }
        Policy::from_pairs(&pairs)
    }

    /// Algorithm 4 over the correct examples of `t`, producing synthetic
    /// error [`TrainExample`]s in their source cells' tuple contexts.
    /// `target_ratio` forces the Figure 6 error ratio instead of
    /// balancing.
    pub fn augment_examples(
        &self,
        t: &TrainingSet,
        policy: &Policy,
        target_ratio: Option<f64>,
    ) -> Vec<TrainExample> {
        let corrects: Vec<(CellId, String)> = t
            .examples()
            .iter()
            .filter(|e| !e.label().is_error())
            .map(|e| (e.cell, e.observed.clone()))
            .collect();
        let values: Vec<String> = corrects.iter().map(|(_, v)| v.clone()).collect();
        let n_errors = t.examples().len() - corrects.len();
        let swap_pool = self.swap_pool();
        let mut aug_cfg = self.cfg.augment.clone();
        aug_cfg.seed = self.seed.wrapping_add(0xA06);
        let generated = match target_ratio {
            Some(r) => augment_to_ratio(&values, n_errors, r, policy, &swap_pool, &aug_cfg),
            None => augment(&values, n_errors, policy, &swap_pool, &aug_cfg),
        };
        generated
            .into_iter()
            .map(|g| TrainExample {
                cell: corrects[g.source].0,
                value: g.dirty,
                label: Label::Error,
            })
            .collect()
    }

    /// Featurize training examples (cells of the reference dataset) into
    /// a matrix plus 0/1 targets.
    pub fn featurize(&self, examples: &[TrainExample]) -> (Matrix, Vec<usize>) {
        let cells: Vec<(CellId, Option<String>)> = examples
            .iter()
            .map(|e| {
                let observed = self.reference().cell_value(e.cell);
                if e.value == observed {
                    (e.cell, None)
                } else {
                    (e.cell, Some(e.value.clone()))
                }
            })
            .collect();
        let rows = self
            .featurizer
            .features_batch(self.reference(), &cells, self.cfg.threads);
        let targets = examples
            .iter()
            .map(|e| usize::from(e.label.is_error()))
            .collect();
        (matrix_from_rows(&rows), targets)
    }

    /// Featurize plain cells (observed values) of `data` — the reference
    /// dataset or any later schema-compatible batch.
    pub fn featurize_cells(&self, data: &Dataset, cells: &[CellId]) -> Matrix {
        let work: Vec<(CellId, Option<String>)> = cells.iter().map(|&c| (c, None)).collect();
        let rows = self
            .featurizer
            .features_batch(data, &work, self.cfg.threads);
        matrix_from_rows(&rows)
    }

    /// Train the wide-and-deep model on featurized examples, sharding
    /// each mini-batch over `cfg.threads` workers (bitwise-identical to
    /// single-threaded training at the same seed).
    pub fn train_model(&self, x: &Matrix, targets: &[usize]) -> WideDeepModel {
        let mut model = WideDeepModel::with_branch_style(
            self.featurizer.layout().clone(),
            self.cfg.hidden_dim,
            self.cfg.dropout,
            self.seed,
            self.cfg.branch_style,
        );
        model.train_threaded(
            x,
            targets,
            self.cfg.epochs,
            self.cfg.batch_size,
            self.cfg.lr,
            self.cfg.threads,
        );
        model
    }

    /// Platt-scale on holdout examples; identity when the holdout is
    /// empty, single-class, or the fit came out non-monotone (negative
    /// slope), which would invert the score ordering.
    pub fn calibrate(&self, model: &WideDeepModel, holdout: &[TrainExample]) -> PlattScaler {
        if holdout.is_empty() {
            return PlattScaler::identity();
        }
        let (x, targets) = self.featurize(holdout);
        self.calibrate_scores(&model.scores(&x), &targets)
    }

    /// [`Pipeline::calibrate`] from pre-computed holdout scores — lets
    /// a caller that already featurized and scored the holdout reuse
    /// that work.
    pub fn calibrate_scores(&self, scores: &[f32], targets: &[usize]) -> PlattScaler {
        if scores.is_empty() {
            return PlattScaler::identity();
        }
        let labels: Vec<bool> = targets.iter().map(|&t| t == 1).collect();
        if labels.iter().all(|&l| l) || labels.iter().all(|&l| !l) {
            return PlattScaler::identity();
        }
        let platt = PlattScaler::fit(scores, &labels, self.cfg.platt_epochs);
        if platt.a <= 0.0 {
            PlattScaler::identity()
        } else {
            platt
        }
    }

    /// Platt-calibrated error probabilities for featurized cells — the
    /// scoring rule a fitted model serves.
    pub fn predict_proba(
        &self,
        model: &WideDeepModel,
        platt: &PlattScaler,
        x: &Matrix,
    ) -> Vec<f32> {
        model.scores(x).into_iter().map(|s| platt.prob(s)).collect()
    }

    /// Tune the decision threshold on the holdout (the §6.1 "hold-out
    /// set used for hyper parameter tuning"): grid-search the calibrated
    /// probability threshold maximizing holdout F1. Falls back to the
    /// configured default when the holdout is empty or single-class.
    pub fn select_threshold(
        &self,
        model: &WideDeepModel,
        platt: &PlattScaler,
        holdout: &[TrainExample],
    ) -> f64 {
        self.select_threshold_weighted(model, platt, holdout, &vec![1.0; holdout.len()])
    }

    /// Weighted threshold tuning. Weights let a tuning set whose class
    /// mix differs from the deployment distribution (e.g. a holdout
    /// balanced with synthetic errors) stand in for it: each example
    /// contributes its weight to the weighted confusion counts, so the
    /// selected threshold maximizes the *estimated deployment* F1.
    pub fn select_threshold_weighted(
        &self,
        model: &WideDeepModel,
        platt: &PlattScaler,
        examples: &[TrainExample],
        weights: &[f64],
    ) -> f64 {
        assert_eq!(examples.len(), weights.len(), "weights arity");
        if examples.is_empty() {
            return f64::from(self.cfg.decision_threshold);
        }
        let (x, targets) = self.featurize(examples);
        let probs = self.predict_proba(model, platt, &x);
        self.select_threshold_probs(&probs, &targets, weights)
    }

    /// [`Pipeline::select_threshold_weighted`] from pre-computed
    /// calibrated probabilities — lets a caller that already scored the
    /// tuning set reuse that work.
    pub fn select_threshold_probs(&self, probs: &[f32], targets: &[usize], weights: &[f64]) -> f64 {
        assert_eq!(probs.len(), weights.len(), "weights arity");
        if probs.is_empty() || targets.iter().all(|&t| t == 1) || targets.iter().all(|&t| t == 0) {
            return f64::from(self.cfg.decision_threshold);
        }
        // Grid-search calibrated thresholds; ties keep the lowest
        // (recall-leaning) cut, matching the error-detection emphasis.
        let mut best = (f64::from(self.cfg.decision_threshold), -1.0f64);
        for step in 1..20 {
            let thr = f64::from(step) * 0.05;
            let (mut tp, mut fp, mut fn_) = (0.0f64, 0.0f64, 0.0f64);
            for ((&p, &t), &w) in probs.iter().zip(targets).zip(weights) {
                match (f64::from(p) >= thr, t == 1) {
                    (true, true) => tp += w,
                    (true, false) => fp += w,
                    (false, true) => fn_ += w,
                    (false, false) => {}
                }
            }
            let f1 = if tp == 0.0 {
                0.0
            } else {
                2.0 * tp / (2.0 * tp + fp + fn_)
            };
            if f1 > best.1 {
                best = (thr, f1);
            }
        }
        best.0
    }

    /// Final labels from probabilities at a threshold.
    pub fn labels_from_proba(&self, probs: &[f32], threshold: f64) -> Vec<Label> {
        probs
            .iter()
            .map(|&p| {
                if f64::from(p) >= threshold {
                    Label::Error
                } else {
                    Label::Correct
                }
            })
            .collect()
    }

    /// A pool of alternative values for the random-swap strategy: one
    /// representative per distinct value, capped for memory.
    fn swap_pool(&self) -> Vec<String> {
        let d = self.reference();
        let mut pool = Vec::new();
        'outer: for a in 0..d.n_attrs() {
            let mut seen = std::collections::HashSet::new();
            for &s in d.column(a) {
                if seen.insert(s) {
                    pool.push(d.pool().resolve(s).to_owned());
                    if pool.len() >= 1000 {
                        break 'outer;
                    }
                }
            }
        }
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_data::{DatasetBuilder, GroundTruth, Schema};

    fn world() -> (Dataset, GroundTruth) {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..25 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        (dirty, truth)
    }

    fn training_set(dirty: &Dataset, truth: &GroundTruth, tuples: &[usize]) -> TrainingSet {
        truth.label_tuples(dirty, tuples)
    }

    #[test]
    fn channel_learned_from_labeled_errors() {
        let (dirty, truth) = world();
        let cfg = HoloDetectConfig::fast();
        let t = training_set(&dirty, &truth, &(0..10).collect::<Vec<_>>());
        let p = Pipeline::fit(&cfg, &dirty, &[], 0);
        let policy = p.learn_channel(&t);
        assert!(!policy.is_empty());
        // The x-typo channel should be represented.
        assert!(policy
            .entries()
            .iter()
            .any(|(t, _)| t.to == "x" || t.to.contains('x')));
    }

    #[test]
    fn augmentation_balances_examples() {
        let (dirty, truth) = world();
        let cfg = HoloDetectConfig::fast();
        let tuples: Vec<usize> = (0..20).collect();
        let t = training_set(&dirty, &truth, &tuples);
        let p = Pipeline::fit(&cfg, &dirty, &[], 0);
        let policy = p.learn_channel(&t);
        let aug = p.augment_examples(&t, &policy, None);
        let (correct, errors) = t.class_counts();
        assert!(!aug.is_empty());
        assert!(aug.len() <= correct - errors);
        for a in &aug {
            assert_eq!(a.label, Label::Error);
            assert_ne!(a.value, dirty.cell_value(a.cell));
        }
    }

    #[test]
    fn featurize_roundtrip_dims() {
        let (dirty, truth) = world();
        let cfg = HoloDetectConfig::fast();
        let t = training_set(&dirty, &truth, &[0, 1, 2]);
        let p = Pipeline::fit(&cfg, &dirty, &[], 0);
        let examples = TrainExample::from_training_set(&t);
        let (x, y) = p.featurize(&examples);
        assert_eq!(x.rows(), examples.len());
        assert_eq!(x.cols(), p.featurizer.layout().total_dim());
        assert_eq!(y.len(), examples.len());
        assert_eq!(y.iter().sum::<usize>(), 1); // one error among labeled rows
    }

    #[test]
    fn holdout_split_respects_fraction() {
        let (dirty, truth) = world();
        let cfg = HoloDetectConfig::fast();
        let t = training_set(&dirty, &truth, &(0..20).collect::<Vec<_>>());
        let p = Pipeline::fit(&cfg, &dirty, &[], 0);
        let (train, hold) = p.split_holdout(&t);
        assert_eq!(train.len() + hold.len(), t.len());
        assert_eq!(hold.len(), (t.len() as f64 * 0.1).round() as usize);
    }

    #[test]
    fn end_to_end_small_training_run() {
        let (dirty, truth) = world();
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 15;
        let t = training_set(&dirty, &truth, &(0..20).collect::<Vec<_>>());
        let p = Pipeline::fit(&cfg, &dirty, &[], 0);
        let (train, hold) = p.split_holdout(&t);
        let policy = p.learn_channel(&train);
        let mut examples = TrainExample::from_training_set(&train);
        examples.extend(p.augment_examples(&train, &policy, None));
        let (x, y) = p.featurize(&examples);
        let model = p.train_model(&x, &y);
        let platt = p.calibrate(&model, &TrainExample::from_training_set(&hold));
        let eval: Vec<CellId> = (40..50)
            .flat_map(|t| [CellId::new(t, 0), CellId::new(t, 1)])
            .collect();
        let xe = p.featurize_cells(&dirty, &eval);
        let probs = p.predict_proba(&model, &platt, &xe);
        assert_eq!(probs.len(), eval.len());
        assert!(probs.iter().all(|&pr| (0.0..=1.0).contains(&pr)));
        let labels = p.labels_from_proba(&probs, 0.5);
        assert_eq!(labels.len(), eval.len());
    }
}
