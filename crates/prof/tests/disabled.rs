//! Behaviour with profiling *disabled* — the `--prof`-off hot path.
//!
//! This integration test binary runs in its own process and never
//! calls `set_enabled(true)`, so it can observe the dormant state that
//! in-crate unit tests (which share a process with tests that enable
//! profiling) cannot: scopes are inert and intern nothing, while the
//! always-on instruments keep counting.

#[test]
fn scope_attribution_dormant_until_enabled() {
    assert!(!holo_prof::enabled());
    {
        let _g = holo_prof::scope("never-registered");
        let _v: Vec<u8> = Vec::with_capacity(1024);
    }
    // Disabled scope() interns nothing and attributes nothing.
    assert!(holo_prof::scope_allocs()
        .iter()
        .all(|s| s.scope != "never-registered"));
}

#[test]
fn always_on_instruments_work_while_disabled() {
    let t0 = holo_prof::thread_alloc_bytes();
    let v: Vec<u8> = Vec::with_capacity(2048);
    let t1 = holo_prof::thread_alloc_bytes();
    drop(v);
    assert_eq!(t1.wrapping_sub(t0), 2048);
    let totals = holo_prof::alloc_totals();
    assert!(totals.allocs > 0);
    assert!(totals.bytes >= 2048);

    let m = holo_prof::ProfMutex::new("disabled-proc-lock", 5u8);
    assert_eq!(*m.lock().unwrap(), 5);
    assert!(holo_prof::lock_snapshots()
        .iter()
        .any(|l| l.lock == "disabled-proc-lock" && l.acquires >= 1));

    let p = holo_prof::PoolStats::register("disabled-proc-pool");
    p.record_busy(10);
    p.record_idle(30);
    let snap = holo_prof::pool_snapshots()
        .into_iter()
        .find(|s| s.pool == "disabled-proc-pool")
        .unwrap();
    assert_eq!(snap.tasks, 1);
    assert!((snap.busy_ratio - 0.25).abs() < 1e-9);
}
