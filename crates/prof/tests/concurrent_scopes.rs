//! Property test: allocator scope attribution is *exact* under
//! concurrent tagged scopes.
//!
//! N threads each enter their own scope tag and perform M allocations
//! of a known size (`Vec::<u8>::with_capacity(s)` allocates exactly
//! `s` bytes; the holder vector is pre-sized outside the scope so no
//! incidental reallocation is tagged). Per-scope byte and allocation
//! deltas must then equal each thread's M×S exactly, and the per-scope
//! deltas must sum to the global tagged total — no losses, no
//! double-counting, no cross-thread bleed.

use proptest::collection;
use proptest::prelude::*;
use std::thread;

const NAMES: [&str; 4] = [
    "prop-scope-0",
    "prop-scope-1",
    "prop-scope-2",
    "prop-scope-3",
];

fn scope_stat(name: &str) -> (u64, u64) {
    holo_prof::scope_allocs()
        .iter()
        .find(|s| s.scope == name)
        .map(|s| (s.allocs, s.bytes))
        .unwrap_or((0, 0))
}

proptest! {
    #[test]
    fn per_scope_deltas_exact_and_sum_to_tagged_total(
        threads in 1usize..=4,
        allocs in 1usize..=16,
        sizes in collection::vec(1usize..=256, 4),
    ) {
        holo_prof::set_enabled(true);
        // Intern every name up front so baseline reads see a slot.
        for n in NAMES {
            drop(holo_prof::scope(n));
        }
        let before: Vec<(u64, u64)> = NAMES.iter().map(|n| scope_stat(n)).collect();
        let global_before = holo_prof::alloc_totals();

        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let size = sizes[i];
                thread::spawn(move || {
                    // Pre-size the holder *outside* the scope so pushes
                    // never reallocate inside it.
                    let mut holder: Vec<Vec<u8>> = Vec::with_capacity(allocs);
                    {
                        let _g = holo_prof::scope(NAMES[i]);
                        for _ in 0..allocs {
                            holder.push(Vec::with_capacity(size));
                        }
                    }
                    drop(holder);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut tagged_delta = 0u64;
        let mut expected_total = 0u64;
        for i in 0..threads {
            let (a0, b0) = before[i];
            let (a1, b1) = scope_stat(NAMES[i]);
            let expected = (allocs * sizes[i]) as u64;
            prop_assert_eq!(b1 - b0, expected);
            prop_assert_eq!(a1 - a0, allocs as u64);
            tagged_delta += b1 - b0;
            expected_total += expected;
        }
        prop_assert_eq!(tagged_delta, expected_total);
        // The global counter saw at least everything the scopes saw.
        let global_after = holo_prof::alloc_totals();
        prop_assert!(global_after.bytes - global_before.bytes >= expected_total);
    }
}
