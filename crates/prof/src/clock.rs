//! The workspace's single monotonic-clock helper.
//!
//! Every duration the workspace reports — span durations, lock wait
//! times, scenario latencies, bench wall times — funnels through
//! [`Stopwatch`] so the clock source and the rounding rules live in
//! exactly one place. The wall clock ([`std::time::SystemTime`]) is
//! never consulted: it can jump backwards under NTP correction, and
//! the lint suite's seed-hygiene rule bans it outside `crates/bench`
//! for determinism reasons anyway.
//!
//! This module used to live in `holo-trace`; it moved here when
//! `holo-prof` became the lowest layer of the observability stack so
//! both tracing (spans) and profiling (lock wait/hold, pool busy/idle)
//! share one clock. `holo_trace::Stopwatch` re-exports this type, so
//! existing imports keep working.

use std::time::{Duration, Instant};

/// A started monotonic clock.
///
/// A thin wrapper over [`Instant`] with the duration conversions the
/// workspace actually uses, so callers never hand-roll
/// `elapsed().as_secs_f64() * 1e3`-style arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current monotonic instant.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole microseconds, saturating at `u64::MAX`.
    pub fn elapsed_micros(&self) -> u64 {
        duration_micros(self.elapsed())
    }

    /// Elapsed fractional milliseconds.
    pub fn elapsed_millis(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Converts a [`Duration`] to whole microseconds, saturating at
/// `u64::MAX` (a duration that long is an upstream bug, not a value
/// worth widening every counter to u128 for).
pub fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Like [`duration_micros`] but clamped to at least 1.
///
/// Used for recorded phase durations where `0` is reserved to mean
/// "this phase never ran": a sub-microsecond phase that *did* run
/// reports 1µs rather than masquerading as absent.
pub fn nonzero_micros(d: Duration) -> u64 {
    duration_micros(d).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotone_and_consistent() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_micros();
        let b = sw.elapsed_micros();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_millis() >= 0.0);
    }

    #[test]
    fn micros_conversions() {
        assert_eq!(duration_micros(Duration::from_micros(250)), 250);
        assert_eq!(duration_micros(Duration::ZERO), 0);
        assert_eq!(nonzero_micros(Duration::ZERO), 1);
        assert_eq!(nonzero_micros(Duration::from_micros(7)), 7);
        assert_eq!(duration_micros(Duration::MAX), u64::MAX);
    }
}
