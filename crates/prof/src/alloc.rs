//! Counting global allocator with scope attribution.
//!
//! [`CountingAlloc`] wraps [`System`] and is installed as the
//! workspace's `#[global_allocator]` the moment any crate links
//! `holo-prof`. Two tiers of accounting run on every allocation:
//!
//! * **Always on** — saturating global counters (allocation count,
//!   cumulative bytes, freed bytes, live bytes, peak live bytes) and a
//!   per-thread cumulative byte counter. These are a handful of relaxed
//!   atomic ops and one thread-local read; they are cheap enough to
//!   leave unconditionally enabled, and the per-thread counter is what
//!   powers per-request allocation deltas in trace-span notes.
//! * **Gated on [`crate::enabled`]** — *scope attribution*. A thread
//!   announces what stage it is running via [`scope`] (`"validate"`,
//!   `"score"`, …; the same names trace spans use) and every allocation
//!   made while the guard lives is booked against that stage's slot in
//!   a fixed table. When profiling is disabled [`scope`] returns an
//!   inert guard and the allocator skips the thread-local lookup.
//!
//! The allocator itself never allocates: scope names are interned (and
//! the registry vector grown) inside [`scope`], which runs on the
//! caller's stack *outside* the allocator; the hot path only touches
//! const-initialized thread-locals and fixed static atomic arrays. All
//! counters saturate rather than wrap (except the per-thread counter,
//! which wraps so deltas stay exact — see [`thread_alloc_bytes`]), and
//! every path is panic-free: a panic inside a global allocator aborts
//! the process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Fixed number of scope-attribution slots.
///
/// Scope names are interned into a table of this size; registrations
/// past the cap are silently dropped (the allocation is still counted
/// globally, just not attributed). The workspace uses a handful of
/// stage names, so 32 leaves generous headroom while keeping the
/// allocator's static footprint fixed.
pub const MAX_SCOPES: usize = 32;

/// Sentinel scope id meaning "untagged".
const NO_SCOPE: usize = usize::MAX;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

static SCOPE_ALLOCS: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];
static SCOPE_BYTES: [AtomicU64; MAX_SCOPES] = [const { AtomicU64::new(0) }; MAX_SCOPES];
static SCOPE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Master switch for scope attribution (and span alloc annotations in
/// `holo-serve`). Sticky: production code only ever turns it on, so
/// parallel tests sharing one process cannot race it back off.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Scope slot allocations on this thread are booked against.
    /// Const-initialized `Cell` so reading it inside the allocator can
    /// never itself allocate or run lazy initialization.
    static CURRENT_SCOPE: Cell<usize> = const { Cell::new(NO_SCOPE) };
    /// Cumulative bytes allocated by this thread, wrapping.
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The counting `#[global_allocator]` wrapper over [`System`].
///
/// Installed once, here in `holo-prof`; every binary and test target
/// that (transitively) depends on this crate gets it automatically.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[allow(unsafe_code)] // the one unsafe surface in the crate: GlobalAlloc delegation to System
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            record_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Booked as free-old + alloc-new so live/peak stay honest
            // and the new size is attributed to the current scope.
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        p
    }
}

/// Books one successful allocation of `n` bytes. Must never allocate
/// or panic: it runs inside the global allocator.
fn record_alloc(n: u64) {
    crate::sat_add(&ALLOC_COUNT, 1);
    crate::sat_add(&ALLOC_BYTES, n);
    let prev = LIVE_BYTES
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_add(n))
        })
        .unwrap_or(0);
    PEAK_BYTES.fetch_max(prev.saturating_add(n), Ordering::Relaxed);
    // `try_with` (never `with`): during thread teardown the TLS slot is
    // gone and `with` would panic — inside an allocator that aborts.
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get().wrapping_add(n)));
    if ENABLED.load(Ordering::Relaxed) {
        let scope = CURRENT_SCOPE.try_with(Cell::get).unwrap_or(NO_SCOPE);
        if let (Some(a), Some(b)) = (SCOPE_ALLOCS.get(scope), SCOPE_BYTES.get(scope)) {
            crate::sat_add(a, 1);
            crate::sat_add(b, n);
        }
    }
}

/// Books one deallocation of `n` bytes.
fn record_dealloc(n: u64) {
    crate::sat_add(&FREED_BYTES, n);
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_sub(n))
    });
}

/// Interns a scope name, returning its slot id (or [`NO_SCOPE`] once
/// the fixed table is full). May allocate — only called from [`scope`],
/// never from allocator context.
fn intern(name: &'static str) -> usize {
    let mut names = SCOPE_NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(i) = names.iter().position(|n| *n == name) {
        return i;
    }
    if names.len() >= MAX_SCOPES {
        return NO_SCOPE;
    }
    names.push(name);
    names.len() - 1
}

/// RAII guard restoring the thread's previous scope tag on drop.
///
/// Returned by [`scope`]. Scopes nest: the innermost active guard wins,
/// and dropping it restores whatever tag was current when it was
/// created.
#[derive(Debug)]
#[must_use = "allocation is attributed only while the guard is alive"]
pub struct ScopeGuard {
    prev: usize,
    restore: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.restore {
            let _ = CURRENT_SCOPE.try_with(|c| c.set(self.prev));
        }
    }
}

/// Tags the current thread so allocations are attributed to `name`
/// until the returned guard drops.
///
/// Use the same stage names the trace spans use (`"validate"`,
/// `"score"`, `"encode"`, …) so `/v1/prof`'s top allocation scopes line
/// up with `/v1/trace`'s stage timings. When profiling is disabled
/// (see [`crate::enabled`]) this returns an inert guard without
/// touching the interning table — the documented "off the hot path"
/// behaviour of the `--prof` flag.
pub fn scope(name: &'static str) -> ScopeGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return ScopeGuard {
            prev: NO_SCOPE,
            restore: false,
        };
    }
    let id = intern(name);
    let prev = CURRENT_SCOPE
        .try_with(|c| c.replace(id))
        .unwrap_or(NO_SCOPE);
    ScopeGuard {
        prev,
        restore: true,
    }
}

/// Cumulative bytes ever allocated by the *calling thread*, wrapping
/// at `u64::MAX`.
///
/// Per-request allocation deltas are computed as
/// `after.wrapping_sub(before)`: wrapping (rather than saturating)
/// keeps deltas exact even across counter overflow. Unlike scope
/// attribution this is always on — the counter is a single
/// const-initialized thread-local `Cell`.
pub fn thread_alloc_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Point-in-time view of the global allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Successful allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Cumulative bytes allocated, saturating.
    pub bytes: u64,
    /// Cumulative bytes freed, saturating.
    pub freed_bytes: u64,
    /// Currently live bytes (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of [`AllocTotals::live_bytes`].
    pub peak_bytes: u64,
}

/// Snapshots the global allocation counters.
pub fn alloc_totals() -> AllocTotals {
    AllocTotals {
        allocs: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// One scope's share of the allocation traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeAlloc {
    /// The tag passed to [`scope`].
    pub scope: &'static str,
    /// Allocations booked while the tag was active.
    pub allocs: u64,
    /// Bytes booked while the tag was active.
    pub bytes: u64,
}

/// Snapshots per-scope attribution, heaviest scope (by bytes) first;
/// name breaks ties so the ordering is deterministic.
pub fn scope_allocs() -> Vec<ScopeAlloc> {
    let names: Vec<&'static str> = SCOPE_NAMES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut out: Vec<ScopeAlloc> = names
        .iter()
        .enumerate()
        .filter_map(|(i, name)| {
            let allocs = SCOPE_ALLOCS.get(i)?.load(Ordering::Relaxed);
            let bytes = SCOPE_BYTES.get(i)?.load(Ordering::Relaxed);
            Some(ScopeAlloc {
                scope: name,
                allocs,
                bytes,
            })
        })
        .collect();
    out.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.scope.cmp(b.scope)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_bytes(name: &str) -> u64 {
        scope_allocs()
            .iter()
            .find(|s| s.scope == name)
            .map(|s| s.bytes)
            .unwrap_or(0)
    }

    fn scope_alloc_count(name: &str) -> u64 {
        scope_allocs()
            .iter()
            .find(|s| s.scope == name)
            .map(|s| s.allocs)
            .unwrap_or(0)
    }

    #[test]
    fn totals_count_allocations_and_track_peak() {
        let before = alloc_totals();
        let v: Vec<u8> = Vec::with_capacity(64 * 1024);
        let after = alloc_totals();
        drop(v);
        let freed = alloc_totals();
        assert!(after.allocs > before.allocs);
        assert!(after.bytes >= before.bytes + 64 * 1024);
        // Peak is monotone and must have seen our 64 KiB while it lived.
        assert!(after.peak_bytes >= before.peak_bytes);
        assert!(after.peak_bytes >= 64 * 1024);
        assert!(freed.freed_bytes >= before.freed_bytes + 64 * 1024);
    }

    #[test]
    fn thread_counter_is_exact_for_a_known_allocation() {
        let t0 = thread_alloc_bytes();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let t1 = thread_alloc_bytes();
        drop(v);
        assert_eq!(t1.wrapping_sub(t0), 4096);
    }

    #[test]
    fn scoped_allocations_are_attributed_exactly() {
        crate::set_enabled(true);
        // Interning happens before the baseline read so the slot exists.
        drop(scope("alloc-test-exact"));
        let before = scope_bytes("alloc-test-exact");
        let before_count = scope_alloc_count("alloc-test-exact");
        let mut holder: Vec<Vec<u8>> = Vec::with_capacity(8);
        {
            let _g = scope("alloc-test-exact");
            for _ in 0..8 {
                holder.push(Vec::with_capacity(512));
            }
        }
        drop(holder);
        assert_eq!(scope_bytes("alloc-test-exact") - before, 8 * 512);
        assert_eq!(scope_alloc_count("alloc-test-exact") - before_count, 8);
    }

    #[test]
    fn scopes_nest_and_restore() {
        crate::set_enabled(true);
        drop(scope("alloc-test-outer"));
        drop(scope("alloc-test-inner"));
        let outer_before = scope_bytes("alloc-test-outer");
        let inner_before = scope_bytes("alloc-test-inner");
        let mut holder: Vec<Vec<u8>> = Vec::with_capacity(2);
        {
            let _outer = scope("alloc-test-outer");
            {
                let _inner = scope("alloc-test-inner");
                holder.push(Vec::with_capacity(256));
            }
            holder.push(Vec::with_capacity(128));
        }
        drop(holder);
        assert_eq!(scope_bytes("alloc-test-inner") - inner_before, 256);
        assert_eq!(scope_bytes("alloc-test-outer") - outer_before, 128);
    }

    #[test]
    fn realloc_growth_is_counted() {
        let before = alloc_totals();
        let mut v: Vec<u8> = Vec::with_capacity(16);
        for i in 0..4096u32 {
            v.push((i % 251) as u8);
        }
        let after = alloc_totals();
        drop(v);
        assert!(after.bytes >= before.bytes + 4096);
        assert!(after.allocs > before.allocs);
    }
}
