//! holo-prof: in-process continuous profiling for the HoloDetect
//! serving stack.
//!
//! Spans (`holo-trace`) answer *where a request's time went*; this
//! crate answers *why a stage is slow*, with three std-only,
//! zero-dependency instruments that are always compiled in and cheap
//! enough to leave running in production:
//!
//! 1. **Allocation accounting** ([`CountingAlloc`], [`scope`],
//!    [`thread_alloc_bytes`], [`alloc_totals`], [`scope_allocs`]) — a
//!    `#[global_allocator]` wrapper over [`std::alloc::System`] keeps
//!    saturating global counters (allocs / bytes / freed / live / peak)
//!    plus a per-thread byte counter, and — when profiling is enabled —
//!    attributes allocation to thread-local *scope tags* that use the
//!    same stage names as trace spans, so `/v1/prof`'s top scopes line
//!    up with `/v1/trace`'s stage timings.
//! 2. **Lock contention** ([`ProfMutex`], [`ProfRwLock`],
//!    [`lock_snapshots`]) — named drop-in lock wrappers that book
//!    acquires, contended acquires, wait-time totals + histograms
//!    ([`LOCK_WAIT_BOUNDS_MICROS`]), and hold time, deduplicated by
//!    name process-wide. These replace the raw locks on the serving hot
//!    paths (`serve`: registry stripes, batcher, recorder, HTTP queue;
//!    `stream`: state / log / drift / labels / timelines / refit).
//! 3. **Worker-pool utilization** ([`PoolStats`], [`pool_snapshots`])
//!    — busy/idle accounting per named pool (HTTP workers, the
//!    micro-batcher, the refit scheduler), yielding the busy ratio that
//!    sizing decisions need.
//!
//! # Enabling
//!
//! Global and per-thread allocation counters, lock stats, and pool
//! stats are always on — they are a few relaxed atomics per event.
//! Only *scope attribution* (the thread-local tag lookup on every
//! allocation, plus per-request span annotations in `holo-serve`) is
//! gated, via [`set_enabled`] — wired to the `--prof` CLI flag.
//! Enabling is **sticky**: callers only ever turn it on, never off,
//! so parallel tests sharing one process cannot race it back off and
//! cumulative counters stay monotone.
//!
//! # Layering
//!
//! This crate is the lowest layer of the observability stack: it also
//! owns the workspace's single monotonic clock ([`Stopwatch`],
//! [`duration_micros`], [`nonzero_micros`]), which `holo-trace`
//! re-exports for its spans. Nothing here depends on any other
//! workspace crate.
//!
//! # Reading the numbers
//!
//! `GET /v1/prof` on a running `holo-serve` returns the JSON snapshot
//! (top allocation scopes, hottest locks by wait time, pool
//! utilization); `/metrics` exports the same data as
//! `holo_prof_alloc_bytes{scope=…}`,
//! `holo_prof_lock_wait_micros{lock=…}` histograms, and
//! `holo_prof_worker_busy_ratio{pool=…}`. All counters are cumulative
//! since process start: rates come from scraping twice and differencing.

#![deny(unsafe_code)]
#![deny(rust_2018_idioms)]

mod alloc;
mod clock;
mod lock;
mod pool;

pub use alloc::{
    alloc_totals, scope, scope_allocs, thread_alloc_bytes, AllocTotals, CountingAlloc, ScopeAlloc,
    ScopeGuard, MAX_SCOPES,
};
pub use clock::{duration_micros, nonzero_micros, Stopwatch};
pub use lock::{
    lock_snapshots, LockSnapshot, ProfMutex, ProfMutexGuard, ProfRwLock, ProfRwLockReadGuard,
    ProfRwLockWriteGuard, LOCK_WAIT_BOUNDS_MICROS, LOCK_WAIT_BUCKETS,
};
pub use pool::{pool_snapshots, PoolSnapshot, PoolStats};

use std::sync::atomic::{AtomicU64, Ordering};

/// Turns scope attribution on (or, in principle, off).
///
/// Production call sites only ever pass `true` — see the stickiness
/// note in the crate docs. The always-on instruments (global alloc
/// totals, thread byte counters, lock stats, pool stats) are not
/// affected by this switch.
pub fn set_enabled(on: bool) {
    alloc::ENABLED.store(on, Ordering::Relaxed);
}

/// Whether scope attribution is currently enabled.
pub fn enabled() -> bool {
    alloc::ENABLED.load(Ordering::Relaxed)
}

/// Saturating add on a relaxed atomic counter.
///
/// The workspace's counter-discipline lint bans `fetch_add` (which
/// wraps) in instrumented crates; every counter bump in this crate
/// funnels through here instead.
pub(crate) fn sat_add(counter: &AtomicU64, v: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_add(v))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_add_saturates_at_max() {
        let c = AtomicU64::new(u64::MAX - 1);
        sat_add(&c, 5);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
        sat_add(&c, 1);
        assert_eq!(c.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn enable_is_observable() {
        set_enabled(true);
        assert!(enabled());
    }
}
