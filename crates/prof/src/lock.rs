//! Instrumented lock wrappers: [`ProfMutex`] and [`ProfRwLock`].
//!
//! Drop-in replacements for [`std::sync::Mutex`] / [`std::sync::RwLock`]
//! that carry a short static *name* and book, per name:
//!
//! * **acquires** — successful lock acquisitions;
//! * **contended** — acquisitions that could not take the lock
//!   immediately (the `try_*` fast path failed and the caller blocked);
//! * **wait time** — microseconds spent blocked, totalled and bucketed
//!   into a fixed histogram ([`LOCK_WAIT_BOUNDS_MICROS`]);
//! * **hold time** — microseconds the guard lived, totalled.
//!
//! Stats are deduplicated by name in a process-wide registry, so the
//! sixteen registry stripes all aggregate under `"stripe"` and every
//! `LiveModel`'s state lock under `"state"` — the counters are
//! cumulative and monotone for the life of the process, which is what
//! `/v1/prof` consumers (and its monotonicity test) rely on.
//!
//! The wrappers preserve std semantics exactly: `lock()`/`read()`/
//! `write()` return [`LockResult`] and poisoning propagates (a poisoned
//! inner lock surfaces as `Err(PoisonError)` wrapping a live guard), so
//! call sites written against std locks — including the workspace's
//! `unwrap_or_else(PoisonError::into_inner)` read-path idiom — compile
//! unchanged. The uncontended path costs one `try_lock` plus two
//! relaxed atomic updates and one `Instant` read for hold timing; wait
//! timing (a second `Instant` pair) is only paid on contention.
//!
//! The declared lock *hierarchy* (see `crates/stream/src/live.rs`) is
//! a property of acquisition order, not lock type; wrapping does not
//! change it, and the holo-lint `lock-order` rule keeps watching the
//! same field names.

use crate::clock::Stopwatch;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    TryLockError,
};

/// Number of finite histogram bounds for lock-wait times.
pub const LOCK_WAIT_BUCKETS: usize = 10;

/// Upper bounds (µs, inclusive) of the lock-wait histogram buckets; an
/// implicit `+Inf` bucket catches the overflow. Chosen to resolve both
/// "a scoring read briefly bumped into an ingest write" (single-digit
/// µs) and "a refit held everything up" (tens of ms).
pub const LOCK_WAIT_BOUNDS_MICROS: [u64; LOCK_WAIT_BUCKETS] =
    [5, 10, 25, 50, 100, 250, 1_000, 5_000, 25_000, 100_000];

/// Per-name lock counters. One instance per distinct name, shared by
/// every lock registered under that name.
#[derive(Debug)]
struct LockStats {
    name: &'static str,
    acquires: AtomicU64,
    contended: AtomicU64,
    wait_micros: AtomicU64,
    hold_micros: AtomicU64,
    /// One count per recorded wait; index `LOCK_WAIT_BUCKETS` is +Inf.
    wait_buckets: [AtomicU64; LOCK_WAIT_BUCKETS + 1],
}

static LOCKS: Mutex<Vec<Arc<LockStats>>> = Mutex::new(Vec::new());

impl LockStats {
    /// Returns the stats slot for `name`, creating it on first use.
    fn register(name: &'static str) -> Arc<LockStats> {
        let mut locks = LOCKS.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = locks.iter().find(|s| s.name == name) {
            return Arc::clone(s);
        }
        let stats = Arc::new(LockStats {
            name,
            acquires: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_micros: AtomicU64::new(0),
            hold_micros: AtomicU64::new(0),
            wait_buckets: [const { AtomicU64::new(0) }; LOCK_WAIT_BUCKETS + 1],
        });
        locks.push(Arc::clone(&stats));
        stats
    }

    fn record_acquire(&self) {
        crate::sat_add(&self.acquires, 1);
    }

    fn record_contended_wait(&self, micros: u64) {
        crate::sat_add(&self.contended, 1);
        crate::sat_add(&self.wait_micros, micros);
        let idx = LOCK_WAIT_BOUNDS_MICROS.partition_point(|&b| micros > b);
        if let Some(bucket) = self.wait_buckets.get(idx) {
            crate::sat_add(bucket, 1);
        }
    }

    fn record_hold(&self, micros: u64) {
        crate::sat_add(&self.hold_micros, micros);
    }
}

/// Point-in-time counters for one lock name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSnapshot {
    /// The name the lock(s) registered under.
    pub lock: &'static str,
    /// Successful acquisitions (read + write for `ProfRwLock`).
    pub acquires: u64,
    /// Acquisitions that blocked.
    pub contended: u64,
    /// Total microseconds spent blocked.
    pub wait_micros: u64,
    /// Total microseconds guards were held.
    pub hold_micros: u64,
    /// Wait histogram counts; parallel to [`LOCK_WAIT_BOUNDS_MICROS`]
    /// with a final +Inf bucket. Sums to `contended`.
    pub wait_buckets: [u64; LOCK_WAIT_BUCKETS + 1],
}

/// Snapshots every registered lock, hottest (by total wait) first;
/// name breaks ties so the ordering is deterministic.
pub fn lock_snapshots() -> Vec<LockSnapshot> {
    let locks = LOCKS.lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<LockSnapshot> = locks
        .iter()
        .map(|s| {
            let mut wait_buckets = [0u64; LOCK_WAIT_BUCKETS + 1];
            for (dst, src) in wait_buckets.iter_mut().zip(s.wait_buckets.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            LockSnapshot {
                lock: s.name,
                acquires: s.acquires.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                wait_micros: s.wait_micros.load(Ordering::Relaxed),
                hold_micros: s.hold_micros.load(Ordering::Relaxed),
                wait_buckets,
            }
        })
        .collect();
    out.sort_by(|a, b| b.wait_micros.cmp(&a.wait_micros).then(a.lock.cmp(b.lock)));
    out
}

/// A named, contention-instrumented [`Mutex`].
pub struct ProfMutex<T> {
    stats: Arc<LockStats>,
    inner: Mutex<T>,
}

impl<T> ProfMutex<T> {
    /// Creates a mutex whose contention is booked under `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        ProfMutex {
            stats: LockStats::register(name),
            inner: Mutex::new(value),
        }
    }

    /// The name this lock registered under.
    pub fn name(&self) -> &'static str {
        self.stats.name
    }

    /// Acquires the lock, booking wait time if it blocks and hold time
    /// for the guard's lifetime. Poisoning propagates exactly as with
    /// [`Mutex::lock`].
    pub fn lock(&self) -> LockResult<ProfMutexGuard<'_, T>> {
        let (inner, poisoned) = match self.inner.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
            Err(TryLockError::WouldBlock) => {
                let wait = Stopwatch::start();
                let r = self.inner.lock();
                self.stats.record_contended_wait(wait.elapsed_micros());
                match r {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                }
            }
        };
        self.stats.record_acquire();
        let guard = ProfMutexGuard {
            inner,
            stats: &self.stats,
            held: Stopwatch::start(),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T> fmt::Debug for ProfMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfMutex")
            .field("name", &self.stats.name)
            .finish_non_exhaustive()
    }
}

/// Guard for [`ProfMutex`]; books hold time when dropped.
#[derive(Debug)]
pub struct ProfMutexGuard<'a, T> {
    inner: MutexGuard<'a, T>,
    stats: &'a LockStats,
    held: Stopwatch,
}

impl<T> Deref for ProfMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for ProfMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for ProfMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.stats.record_hold(self.held.elapsed_micros());
    }
}

/// A named, contention-instrumented [`RwLock`].
pub struct ProfRwLock<T> {
    stats: Arc<LockStats>,
    inner: RwLock<T>,
}

impl<T> ProfRwLock<T> {
    /// Creates a reader-writer lock whose contention is booked under
    /// `name`. Reads and writes share one stats slot: a reader stalled
    /// behind a writer and a writer stalled behind readers both count
    /// as contention on the same lock.
    pub fn new(name: &'static str, value: T) -> Self {
        ProfRwLock {
            stats: LockStats::register(name),
            inner: RwLock::new(value),
        }
    }

    /// The name this lock registered under.
    pub fn name(&self) -> &'static str {
        self.stats.name
    }

    /// Acquires shared access; wait time is booked if a writer (or the
    /// platform's writer-preference policy) makes the reader block.
    pub fn read(&self) -> LockResult<ProfRwLockReadGuard<'_, T>> {
        let (inner, poisoned) = match self.inner.try_read() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
            Err(TryLockError::WouldBlock) => {
                let wait = Stopwatch::start();
                let r = self.inner.read();
                self.stats.record_contended_wait(wait.elapsed_micros());
                match r {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                }
            }
        };
        self.stats.record_acquire();
        let guard = ProfRwLockReadGuard {
            inner,
            stats: &self.stats,
            held: Stopwatch::start(),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Acquires exclusive access; wait time is booked if the lock is
    /// held by readers or another writer.
    pub fn write(&self) -> LockResult<ProfRwLockWriteGuard<'_, T>> {
        let (inner, poisoned) = match self.inner.try_write() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(p)) => (p.into_inner(), true),
            Err(TryLockError::WouldBlock) => {
                let wait = Stopwatch::start();
                let r = self.inner.write();
                self.stats.record_contended_wait(wait.elapsed_micros());
                match r {
                    Ok(g) => (g, false),
                    Err(p) => (p.into_inner(), true),
                }
            }
        };
        self.stats.record_acquire();
        let guard = ProfRwLockWriteGuard {
            inner,
            stats: &self.stats,
            held: Stopwatch::start(),
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T> fmt::Debug for ProfRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProfRwLock")
            .field("name", &self.stats.name)
            .finish_non_exhaustive()
    }
}

/// Shared guard for [`ProfRwLock`]; books hold time when dropped.
#[derive(Debug)]
pub struct ProfRwLockReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    stats: &'a LockStats,
    held: Stopwatch,
}

impl<T> Deref for ProfRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for ProfRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.stats.record_hold(self.held.elapsed_micros());
    }
}

/// Exclusive guard for [`ProfRwLock`]; books hold time when dropped.
#[derive(Debug)]
pub struct ProfRwLockWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    stats: &'a LockStats,
    held: Stopwatch,
}

impl<T> Deref for ProfRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for ProfRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for ProfRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.stats.record_hold(self.held.elapsed_micros());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    fn snap(name: &str) -> LockSnapshot {
        lock_snapshots()
            .into_iter()
            .find(|s| s.lock == name)
            .unwrap_or(LockSnapshot {
                lock: "missing",
                acquires: 0,
                contended: 0,
                wait_micros: 0,
                hold_micros: 0,
                wait_buckets: [0; LOCK_WAIT_BUCKETS + 1],
            })
    }

    #[test]
    fn uncontended_mutex_books_acquires_not_waits() {
        let m = ProfMutex::new("lock-test-uncontended", 7u32);
        let before = snap("lock-test-uncontended");
        for _ in 0..5 {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 12);
        let after = snap("lock-test-uncontended");
        assert_eq!(after.acquires - before.acquires, 6);
        assert_eq!(after.contended, before.contended);
        assert_eq!(after.wait_micros, before.wait_micros);
    }

    #[test]
    fn writer_held_rwlock_books_reader_wait() {
        let l = Arc::new(ProfRwLock::new("lock-test-writer-blocks", 0u32));
        let before = snap("lock-test-writer-blocks");
        let (entered_tx, entered_rx) = mpsc::channel();
        let writer = {
            let l = Arc::clone(&l);
            thread::spawn(move || {
                let mut g = l.write().unwrap();
                entered_tx.send(()).unwrap();
                thread::sleep(Duration::from_millis(20));
                *g = 1;
            })
        };
        entered_rx.recv().unwrap();
        // Writer provably holds the lock: this read must block ~20ms.
        let seen = *l.read().unwrap();
        writer.join().unwrap();
        assert_eq!(seen, 1);
        let after = snap("lock-test-writer-blocks");
        assert!(after.contended > before.contended);
        assert!(
            after.wait_micros >= before.wait_micros + 10_000,
            "reader wait not booked: {} -> {}",
            before.wait_micros,
            after.wait_micros
        );
        let bucket_total: u64 = after.wait_buckets.iter().sum();
        assert_eq!(bucket_total, after.contended);
    }

    #[test]
    fn contended_mutex_books_wait_and_hold() {
        let m = Arc::new(ProfMutex::new("lock-test-contended", ()));
        let before = snap("lock-test-contended");
        let (entered_tx, entered_rx) = mpsc::channel();
        let holder = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let _g = m.lock().unwrap();
                entered_tx.send(()).unwrap();
                thread::sleep(Duration::from_millis(15));
            })
        };
        entered_rx.recv().unwrap();
        let _ = m.lock().unwrap();
        holder.join().unwrap();
        let after = snap("lock-test-contended");
        assert!(after.contended > before.contended);
        assert!(after.wait_micros >= before.wait_micros + 5_000);
        assert!(after.hold_micros >= before.hold_micros + 5_000);
    }

    #[test]
    fn poison_propagates_through_wrapper() {
        let m = Arc::new(ProfMutex::new("lock-test-poison", 1u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        let r = m.lock();
        assert!(r.is_err());
        // The std recovery idiom works through the wrapper.
        let g = r.unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 1);
    }

    #[test]
    fn same_name_shares_one_stats_slot() {
        let a = ProfMutex::new("lock-test-shared-slot", 0u8);
        let b = ProfMutex::new("lock-test-shared-slot", 0u8);
        let before = snap("lock-test-shared-slot");
        drop(a.lock().unwrap());
        drop(b.lock().unwrap());
        let after = snap("lock-test-shared-slot");
        assert_eq!(after.acquires - before.acquires, 2);
        assert_eq!(
            lock_snapshots()
                .iter()
                .filter(|s| s.lock == "lock-test-shared-slot")
                .count(),
            1
        );
    }

    #[test]
    fn snapshots_rank_by_wait_time() {
        let snaps = lock_snapshots();
        for pair in snaps.windows(2) {
            assert!(pair[0].wait_micros >= pair[1].wait_micros);
        }
    }
}
