//! Worker-pool utilization accounting.
//!
//! Long-lived worker threads (HTTP workers, the micro-batcher thread,
//! the refit scheduler) register a [`PoolStats`] slot by name and book
//! their time into two saturating buckets: **busy** (doing work —
//! handling a connection, coalescing + scoring a batch, running a refit
//! tick) and **idle** (blocked waiting for work or sleeping between
//! ticks). The derived busy ratio — busy over busy-plus-idle — is the
//! single number that answers "is this pool under- or over-sized",
//! surfaced as `/v1/prof`'s `pools` array and the
//! `holo_prof_worker_busy_ratio` metrics family.
//!
//! Like lock stats, slots are deduplicated by name in a process-wide
//! registry: four HTTP workers all book into `"http-worker"`, so the
//! ratio describes the pool, not one thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cumulative busy/idle accounting for one named worker pool.
#[derive(Debug)]
pub struct PoolStats {
    name: &'static str,
    busy_micros: AtomicU64,
    idle_micros: AtomicU64,
    tasks: AtomicU64,
}

static POOLS: Mutex<Vec<Arc<PoolStats>>> = Mutex::new(Vec::new());

impl PoolStats {
    /// Returns the stats slot for `name`, creating it on first use.
    /// Every worker in a pool registers the same name and shares the
    /// slot.
    pub fn register(name: &'static str) -> Arc<PoolStats> {
        let mut pools = POOLS.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = pools.iter().find(|s| s.name == name) {
            return Arc::clone(s);
        }
        let stats = Arc::new(PoolStats {
            name,
            busy_micros: AtomicU64::new(0),
            idle_micros: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        });
        pools.push(Arc::clone(&stats));
        stats
    }

    /// The name this pool registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Books `micros` of busy time and counts one completed task.
    pub fn record_busy(&self, micros: u64) {
        crate::sat_add(&self.busy_micros, micros);
        crate::sat_add(&self.tasks, 1);
    }

    /// Books `micros` of idle (waiting/sleeping) time.
    pub fn record_idle(&self, micros: u64) {
        crate::sat_add(&self.idle_micros, micros);
    }
}

/// Point-in-time counters for one pool name.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSnapshot {
    /// The name the pool registered under.
    pub pool: &'static str,
    /// Total microseconds workers spent doing work.
    pub busy_micros: u64,
    /// Total microseconds workers spent waiting for work.
    pub idle_micros: u64,
    /// Tasks completed (one per `record_busy` call).
    pub tasks: u64,
    /// `busy / (busy + idle)`, or `0.0` before any time is booked.
    pub busy_ratio: f64,
}

/// Snapshots every registered pool, in name order.
pub fn pool_snapshots() -> Vec<PoolSnapshot> {
    let pools = POOLS.lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<PoolSnapshot> = pools
        .iter()
        .map(|s| {
            let busy = s.busy_micros.load(Ordering::Relaxed);
            let idle = s.idle_micros.load(Ordering::Relaxed);
            let denom = busy.saturating_add(idle);
            PoolSnapshot {
                pool: s.name,
                busy_micros: busy,
                idle_micros: idle,
                tasks: s.tasks.load(Ordering::Relaxed),
                busy_ratio: if denom == 0 {
                    0.0
                } else {
                    busy as f64 / denom as f64
                },
            }
        })
        .collect();
    out.sort_by(|a, b| a.pool.cmp(b.pool));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str) -> Option<PoolSnapshot> {
        pool_snapshots().into_iter().find(|p| p.pool == name)
    }

    #[test]
    fn busy_idle_and_ratio() {
        let p = PoolStats::register("pool-test-ratio");
        let before = snap("pool-test-ratio").unwrap();
        p.record_busy(3_000);
        p.record_idle(1_000);
        let after = snap("pool-test-ratio").unwrap();
        assert_eq!(after.busy_micros - before.busy_micros, 3_000);
        assert_eq!(after.idle_micros - before.idle_micros, 1_000);
        assert_eq!(after.tasks - before.tasks, 1);
        assert!(after.busy_ratio > 0.0 && after.busy_ratio < 1.0);
    }

    #[test]
    fn register_dedupes_by_name() {
        let a = PoolStats::register("pool-test-dedupe");
        let b = PoolStats::register("pool-test-dedupe");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            pool_snapshots()
                .iter()
                .filter(|p| p.pool == "pool-test-dedupe")
                .count(),
            1
        );
    }

    #[test]
    fn snapshots_sorted_by_name() {
        let snaps = pool_snapshots();
        for pair in snaps.windows(2) {
            assert!(pair[0].pool <= pair[1].pool);
        }
    }
}
