//! Property tests for trace correctness: any open/close sequence
//! yields a well-formed tree, the recorder's ring buffer never exceeds
//! its byte budget, and concurrent tracing from worker threads never
//! interleaves spans across trace ids.

use holo_trace::{RecorderConfig, SpanRecorder, Trace, TraceBuilder, Tracer, Value};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Structural well-formedness: rooted at index 0, parents precede
/// children, children start no earlier than their parents, and every
/// span fits inside the trace's total duration.
fn assert_well_formed(trace: &Trace) -> Result<(), String> {
    if trace.spans.is_empty() {
        return Err("trace has no root span".to_string());
    }
    for (i, span) in trace.spans.iter().enumerate() {
        match (i, span.parent) {
            (0, None) => {}
            (0, Some(p)) => return Err(format!("root has parent {p}")),
            (_, None) => return Err(format!("span {i} has no parent")),
            (_, Some(p)) => {
                if p >= i {
                    return Err(format!("span {i} has forward parent {p}"));
                }
                let parent_start = trace.spans[p].start_micros;
                if span.start_micros < parent_start {
                    return Err(format!("span {i} starts before parent {p}"));
                }
            }
        }
        let end = span.start_micros.saturating_add(span.duration_micros);
        if end > trace.total_micros {
            return Err(format!(
                "span {i} ends at {end} past total {}",
                trace.total_micros
            ));
        }
    }
    if trace.spans[0].duration_micros != trace.total_micros {
        return Err("root span does not cover the trace".to_string());
    }
    Ok(())
}

/// Applies one encoded op to the builder. The op space deliberately
/// includes pathological shapes: closing more than was opened, leaving
/// spans open for finish to sweep, and attaching completed children
/// with arbitrary offsets/durations.
fn apply_op(b: &mut TraceBuilder, op: u8, name: &str, amount: u64) {
    match op % 5 {
        0 => {
            b.child(name);
        }
        1 => {
            b.close();
        }
        2 => {
            b.child_micros(name, amount);
        }
        3 => {
            b.child_at(name, amount / 2, amount);
        }
        _ => {
            b.annotate(name, Value::U64(amount));
        }
    }
}

proptest! {
    /// Any sequence of opens, closes, completed-child attachments, and
    /// annotations — balanced or not — finishes into a well-formed tree.
    #[test]
    fn any_open_close_sequence_is_well_formed(
        ops in proptest::collection::vec(0u8..5, 0..40),
        names in proptest::collection::vec("[a-e]{1,6}", 40..41),
        amounts in proptest::collection::vec(0u64..50_000, 40..41),
    ) {
        let mut b = TraceBuilder::detached("/prop");
        for (i, &op) in ops.iter().enumerate() {
            apply_op(&mut b, op, &names[i], amounts[i]);
        }
        let trace = b.finish();
        if let Err(msg) = assert_well_formed(&trace) {
            prop_assert!(false, "{}", msg);
        }
        // Every open contributes exactly one span; closes/annotations none.
        let opens = ops.iter().filter(|&&o| matches!(o % 5, 0 | 2 | 3)).count();
        prop_assert_eq!(trace.spans.len(), opens + 1);
    }

    /// However many traces of whatever size are recorded, the ring's
    /// byte accounting never exceeds its configured budget.
    #[test]
    fn ring_never_exceeds_byte_budget(
        budget in 64usize..2_048,
        shapes in proptest::collection::vec((0u8..4, 1usize..12, 0u64..10_000), 1..60),
    ) {
        let rec = SpanRecorder::new(RecorderConfig {
            ring_bytes: budget,
            slow_per_endpoint: 2,
        });
        for &(endpoint, spans, micros) in &shapes {
            let mut b = TraceBuilder::detached(match endpoint {
                0 => "/score",
                1 => "/predict",
                2 => "/rows",
                _ => "/an/intentionally/longer/endpoint/label/to/vary/cost",
            });
            for s in 0..spans {
                b.child_micros(if s % 2 == 0 { "score" } else { "encode" }, micros);
            }
            rec.record(b.finish());
            prop_assert!(
                rec.ring_bytes_used() <= budget,
                "ring used {} > budget {}",
                rec.ring_bytes_used(),
                budget
            );
        }
        prop_assert!(rec.recorded_total() >= shapes.len() as u64);
    }

    /// Worker threads tracing concurrently through one shared recorder
    /// never bleed spans across trace ids: every recorded trace holds
    /// only the spans its own thread created, and ids stay unique.
    #[test]
    fn concurrent_tracing_never_interleaves(
        per_thread in 1usize..5,
        spans_per_trace in 1usize..4,
    ) {
        let rec = Arc::new(SpanRecorder::new(RecorderConfig {
            ring_bytes: 1 << 20,
            slow_per_endpoint: 4,
        }));
        let tracer = Tracer::new(Arc::clone(&rec));
        std::thread::scope(|s| {
            for worker in 0..4usize {
                let tracer = tracer.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let mut b = tracer.span(&format!("/w{worker}"));
                        for j in 0..spans_per_trace {
                            b.child(&format!("w{worker}-t{i}-s{j}"));
                            b.close();
                        }
                        b.finish();
                    }
                });
            }
        });
        let recent = rec.recent(usize::MAX);
        prop_assert_eq!(recent.len(), 4 * per_thread);
        let mut ids = HashSet::new();
        for trace in &recent {
            prop_assert!(ids.insert(trace.id), "duplicate trace id");
            // Root name identifies the owning worker; every non-root
            // span must carry that worker's tag.
            let owner = trace.endpoint.clone();
            let tag = owner.trim_start_matches('/').to_string();
            for span in trace.spans.iter().skip(1) {
                prop_assert!(
                    span.name.starts_with(&tag),
                    "span {} leaked into trace for {}",
                    span.name.clone(),
                    owner.clone()
                );
            }
        }
    }
}
