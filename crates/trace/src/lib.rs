//! # holo-trace
//!
//! Request-scoped span tracing for the serving stack: the instrumentation
//! seam that turns "the p99 got slow" into "batch-wait grew 4× while
//! score stayed flat".
//!
//! `/metrics` aggregates answer *how much*; they cannot answer *where*.
//! A scored request crosses HTTP parse → validation → the micro-batch
//! queue → `score_batch` → JSON encode, and a background refit crosses
//! snapshot → adapt (label-drain, channel-learn, augment) → `refit_with`
//! → persist → install. This crate records both paths as cheap
//! monotonic-clock span trees so exemplars (individual slow requests)
//! and aggregates (per-stage histograms) are derived from the *same*
//! measurements and can never disagree.
//!
//! ## Pieces
//!
//! * [`Stopwatch`] — the workspace's single monotonic-clock helper,
//!   re-exported from `holo-prof` (the layer below this one, where the
//!   clock now lives so lock/pool profiling and spans share it).
//!   Everything that times anything (scenario runner, bench bins, the
//!   spans below) goes through it instead of ad-hoc
//!   [`std::time::Instant`] arithmetic.
//! * [`Tracer`] / [`TraceBuilder`] — build one span tree per request:
//!   `tracer.span("score")` opens the root, `.child("validate")` nests,
//!   [`TraceBuilder::finish`] closes everything and hands the completed
//!   [`Trace`] to the recorder. Trace ids are u64s from a process-wide
//!   counter mixed through splitmix64, rendered as 16 hex digits.
//! * [`SpanRecorder`] — a bounded ring buffer of completed traces
//!   (fixed byte budget, overwrite-oldest) plus a slow-request exemplar
//!   store keeping the N worst traces per endpoint, plus per-stage
//!   duration histograms accumulated as traces arrive.
//! * [`RefitTimeline`] / [`TimelineRing`] — durable phase-duration
//!   records for model refits, kept per live model and served as
//!   `GET /v1/models/{name}/refits`.
//!
//! ## Example
//!
//! ```
//! use holo_trace::{RecorderConfig, SpanRecorder, Tracer, Value};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(SpanRecorder::new(RecorderConfig::default()));
//! let tracer = Tracer::new(Arc::clone(&recorder));
//!
//! let mut t = tracer.span("/v1/models/{name}/score");
//! t.child("validate");
//! t.annotate("rows", Value::U64(10));
//! t.close();
//! t.child_micros("batch-wait", 1_900);
//! t.child_micros("score", 450);
//! let trace = t.finish();
//!
//! assert_eq!(recorder.get(trace.id).map(|t| t.spans.len()), Some(4));
//! assert!(trace.stage_micros("batch-wait") >= 1_900);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

mod recorder;
mod refit;
mod span;

pub use holo_prof::{duration_micros, nonzero_micros, Stopwatch};
pub use recorder::{RecorderConfig, SpanRecorder, StageStat, STAGE_BOUNDS_MICROS};
pub use refit::{RefitPhase, RefitTimeline, TimelineRing};
pub use span::{format_trace_id, parse_trace_id, Span, Trace, TraceBuilder, Tracer, Value};
