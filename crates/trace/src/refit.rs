//! Refit timelines: durable phase-duration records for model refits.
//!
//! A refit is too slow and too rare to trace like a request — what
//! operators need is a retained *timeline* per refit: how long the
//! snapshot, the adaptive phases (label-drain, channel-learn, augment),
//! the retrain, the persist, and the install each took, and whether the
//! result was actually swapped into serving. `holo_stream::LiveModel`
//! keeps a bounded [`TimelineRing`] of these and holo-serve exposes the
//! last K as `GET /v1/models/{name}/refits`.

use std::collections::VecDeque;

/// One named phase of a refit with its measured duration.
#[derive(Debug, Clone, PartialEq)]
pub struct RefitPhase {
    /// Phase name, e.g. `"snapshot"`, `"adapt"`, `"refit_with"`.
    pub name: String,
    /// Duration in microseconds (≥ 1 for phases that ran; phases that
    /// never ran are simply absent).
    pub micros: u64,
}

/// The phase-by-phase record of one refit attempt.
#[derive(Debug, Clone)]
pub struct RefitTimeline {
    /// The model this refit belongs to.
    pub model: String,
    /// What initiated it: `"manual"` (the refit endpoint) or `"drift"`
    /// (the background scheduler).
    pub trigger: String,
    /// The epoch the refit snapshot was taken at; the install step is
    /// matched back to its timeline through this.
    pub base_epoch: u64,
    /// Phases in execution order.
    pub phases: Vec<RefitPhase>,
    /// True once the refitted artifact was swapped into serving (the
    /// `"install"` phase is appended at that point).
    pub installed: bool,
}

impl RefitTimeline {
    /// A timeline with no phases yet.
    pub fn new(model: &str, trigger: &str, base_epoch: u64) -> Self {
        RefitTimeline {
            model: model.to_string(),
            trigger: trigger.to_string(),
            base_epoch,
            phases: Vec::new(),
            installed: false,
        }
    }

    /// Appends a phase in execution order.
    pub fn push_phase(&mut self, name: &str, micros: u64) {
        self.phases.push(RefitPhase {
            name: name.to_string(),
            micros,
        });
    }

    /// The duration of the first phase named `name`, if it ran.
    pub fn phase_micros(&self, name: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.micros)
    }

    /// Sum of all phase durations.
    pub fn total_micros(&self) -> u64 {
        self.phases
            .iter()
            .fold(0u64, |acc, p| acc.saturating_add(p.micros))
    }
}

/// A bounded newest-last ring of [`RefitTimeline`]s (overwrite-oldest).
#[derive(Debug)]
pub struct TimelineRing {
    entries: VecDeque<RefitTimeline>,
    cap: usize,
}

impl TimelineRing {
    /// An empty ring retaining at most `cap` timelines.
    pub fn new(cap: usize) -> Self {
        TimelineRing {
            entries: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Appends a timeline, evicting the oldest when full.
    pub fn push(&mut self, timeline: RefitTimeline) {
        if self.entries.len() >= self.cap {
            self.entries.pop_front();
        }
        self.entries.push_back(timeline);
    }

    /// The newest `k` timelines, newest first.
    pub fn last(&self, k: usize) -> Vec<RefitTimeline> {
        self.entries.iter().rev().take(k).cloned().collect()
    }

    /// Attaches the `"install"` phase to the newest not-yet-installed
    /// timeline for `base_epoch`, marking it installed. Returns whether
    /// a matching timeline was found (it may have been evicted).
    pub fn mark_installed(&mut self, base_epoch: u64, micros: u64) -> bool {
        if let Some(t) = self
            .entries
            .iter_mut()
            .rev()
            .find(|t| t.base_epoch == base_epoch && !t.installed)
        {
            t.push_phase("install", micros);
            t.installed = true;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_phases_accumulate_in_order() {
        let mut t = RefitTimeline::new("food", "drift", 42);
        t.push_phase("snapshot", 10);
        t.push_phase("adapt", 200);
        t.push_phase("refit_with", 3_000);
        assert_eq!(t.phase_micros("adapt"), Some(200));
        assert_eq!(t.phase_micros("install"), None);
        assert_eq!(t.total_micros(), 3_210);
        assert!(!t.installed);
    }

    #[test]
    fn ring_bounds_and_orders() {
        let mut ring = TimelineRing::new(2);
        for epoch in 0..5 {
            ring.push(RefitTimeline::new("m", "manual", epoch));
        }
        let last = ring.last(10);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].base_epoch, 4); // newest first
        assert_eq!(last[1].base_epoch, 3);
    }

    #[test]
    fn install_matches_by_epoch() {
        let mut ring = TimelineRing::new(4);
        ring.push(RefitTimeline::new("m", "drift", 7));
        ring.push(RefitTimeline::new("m", "drift", 9));
        assert!(ring.mark_installed(7, 55));
        assert!(!ring.mark_installed(7, 55)); // already installed
        assert!(!ring.mark_installed(999, 1)); // unknown epoch
        let seven = ring
            .last(10)
            .into_iter()
            .find(|t| t.base_epoch == 7)
            .expect("epoch 7 retained");
        assert!(seven.installed);
        assert_eq!(seven.phase_micros("install"), Some(55));
    }
}
