//! Span trees: one [`Trace`] per request, built by a [`TraceBuilder`].
//!
//! A trace is a flat `Vec` of spans in creation order whose tree shape
//! is carried by parent *indices* — index 0 is always the root span
//! (named after the endpoint), and every other span's parent index is
//! strictly smaller than its own. That representation is what makes
//! the recorder's byte accounting and the JSON rendering in holo-serve
//! trivial: no boxes, no recursion, clone is a memcpy of strings.
//!
//! All offsets are microseconds on the builder's own monotonic clock
//! ([`crate::Stopwatch`]), relative to trace start.

use crate::recorder::SpanRecorder;
use holo_prof::Stopwatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A typed span/trace annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter-like values (row counts, byte sizes, epochs).
    U64(u64),
    /// Measurements (scores, rates).
    F64(f64),
    /// Labels (model names, error categories).
    Str(String),
    /// Flags (cache hit, merged into a batch).
    Bool(bool),
}

/// One completed span inside a [`Trace`].
#[derive(Debug, Clone)]
pub struct Span {
    /// Stage name, e.g. `"batch-wait"` or `"apply-delta"`.
    pub name: String,
    /// Index of the parent span within [`Trace::spans`]; `None` only
    /// for the root span at index 0.
    pub parent: Option<usize>,
    /// Start offset from trace start, in microseconds.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub duration_micros: u64,
    /// Typed key/value annotations attached while the span was open.
    pub notes: Vec<(String, Value)>,
}

/// A completed span tree for one request (or one background unit of
/// work), as stored in the [`SpanRecorder`].
#[derive(Debug, Clone)]
pub struct Trace {
    /// Process-unique trace id (rendered via [`format_trace_id`]).
    pub id: u64,
    /// Normalized endpoint label, e.g. `"/v1/models/{name}/score"`.
    pub endpoint: String,
    /// End-to-end duration in microseconds (the root span's duration).
    pub total_micros: u64,
    /// Spans in creation order; index 0 is the root.
    pub spans: Vec<Span>,
    /// Trace-level annotations (status code, model name, …).
    pub notes: Vec<(String, Value)>,
}

impl Trace {
    /// Sum of the durations of every span named `name` (0 if absent).
    pub fn stage_micros(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .fold(0u64, |acc, s| acc.saturating_add(s.duration_micros))
    }

    /// Approximate heap + inline footprint, used by the recorder's
    /// ring-buffer byte budget. Deliberately an over-estimate: strings
    /// count their length plus a fixed per-node overhead.
    pub fn approx_bytes(&self) -> usize {
        const TRACE_OVERHEAD: usize = 64;
        const SPAN_OVERHEAD: usize = 48;
        const NOTE_OVERHEAD: usize = 32;
        let note_bytes = |notes: &[(String, Value)]| {
            notes.iter().fold(0usize, |acc, (k, v)| {
                let vlen = match v {
                    Value::Str(s) => s.len(),
                    _ => 8,
                };
                acc.saturating_add(NOTE_OVERHEAD + k.len() + vlen)
            })
        };
        let span_bytes = self.spans.iter().fold(0usize, |acc, s| {
            acc.saturating_add(SPAN_OVERHEAD + s.name.len() + note_bytes(&s.notes))
        });
        TRACE_OVERHEAD + self.endpoint.len() + span_bytes + note_bytes(&self.notes)
    }
}

/// Renders a trace id as the 16-hex-digit form used in the
/// `x-holo-trace` response header and the `/v1/trace/{id}` path.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses the hex form produced by [`format_trace_id`].
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Process-wide trace sequence; ids are this counter mixed through
/// splitmix64 so consecutive requests get well-scattered ids.
static NEXT_TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> u64 {
    // fetch_update instead of fetch_add: the lint suite's
    // counter-discipline rule reserves the fetch_add family for the
    // saturating-counter idiom; a wrapping sequence is spelled out.
    let seq = NEXT_TRACE_SEQ
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.wrapping_add(1))
        })
        .unwrap_or(0);
    splitmix64(seq)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hands out [`TraceBuilder`]s bound to a shared [`SpanRecorder`].
#[derive(Clone)]
pub struct Tracer {
    recorder: Arc<SpanRecorder>,
}

impl Tracer {
    /// Creates a tracer recording finished traces into `recorder`.
    pub fn new(recorder: Arc<SpanRecorder>) -> Self {
        Tracer { recorder }
    }

    /// The recorder finished traces are delivered to.
    pub fn recorder(&self) -> &Arc<SpanRecorder> {
        &self.recorder
    }

    /// Starts a new trace whose root span is named `endpoint`.
    ///
    /// The endpoint label should be *normalized* (path parameters
    /// replaced by placeholders) — it keys the slow-exemplar store, so
    /// unbounded label cardinality would unbound its memory.
    pub fn span(&self, endpoint: &str) -> TraceBuilder {
        TraceBuilder::with_recorder(endpoint, Some(Arc::clone(&self.recorder)))
    }
}

struct OpenSpan {
    name: String,
    parent: Option<usize>,
    start_micros: u64,
    end_micros: Option<u64>,
    notes: Vec<(String, Value)>,
}

/// An in-progress span tree. Obtained from [`Tracer::span`] (recorded
/// on finish) or [`TraceBuilder::detached`] (not recorded).
///
/// The builder is stack-shaped: [`TraceBuilder::child`] opens a span
/// nested under the currently open one, [`TraceBuilder::close`] closes
/// the innermost open span. Any shape of open/close sequence yields a
/// well-formed tree: closes past the root are ignored and spans still
/// open at [`TraceBuilder::finish`] are closed there. Durations
/// measured elsewhere (another thread, a returned report) are attached
/// as already-completed children via [`TraceBuilder::child_micros`].
pub struct TraceBuilder {
    id: u64,
    endpoint: String,
    clock: Stopwatch,
    spans: Vec<OpenSpan>,
    /// Indices into `spans` of currently-open spans; the root (index 0)
    /// is always at the bottom.
    stack: Vec<usize>,
    notes: Vec<(String, Value)>,
    recorder: Option<Arc<SpanRecorder>>,
}

impl TraceBuilder {
    fn with_recorder(endpoint: &str, recorder: Option<Arc<SpanRecorder>>) -> Self {
        let root = OpenSpan {
            name: endpoint.to_string(),
            parent: None,
            start_micros: 0,
            end_micros: None,
            notes: Vec::new(),
        };
        TraceBuilder {
            id: next_trace_id(),
            endpoint: endpoint.to_string(),
            clock: Stopwatch::start(),
            spans: vec![root],
            stack: vec![0],
            notes: Vec::new(),
            recorder,
        }
    }

    /// A builder with no recorder attached; [`TraceBuilder::finish`]
    /// just returns the trace. Used by tests and standalone callers.
    pub fn detached(endpoint: &str) -> Self {
        Self::with_recorder(endpoint, None)
    }

    /// This trace's id (echoed to clients before the trace finishes).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Microseconds since the trace started, on the trace's own clock.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.elapsed_micros()
    }

    fn current(&self) -> usize {
        self.stack.last().copied().unwrap_or(0)
    }

    /// Opens a span named `name` nested under the currently open span.
    pub fn child(&mut self, name: &str) -> &mut Self {
        let parent = self.current();
        let start = self.clock.elapsed_micros();
        self.spans.push(OpenSpan {
            name: name.to_string(),
            parent: Some(parent),
            start_micros: start,
            end_micros: None,
            notes: Vec::new(),
        });
        self.stack.push(self.spans.len() - 1);
        self
    }

    /// Closes the innermost open span. Ignored once only the root
    /// remains open — the root closes at [`TraceBuilder::finish`].
    pub fn close(&mut self) -> &mut Self {
        if self.stack.len() > 1 {
            if let Some(idx) = self.stack.pop() {
                let end = self.clock.elapsed_micros();
                if let Some(span) = self.spans.get_mut(idx) {
                    span.end_micros = Some(end.max(span.start_micros));
                }
            }
        }
        self
    }

    /// Attaches an already-completed child span (duration measured
    /// elsewhere) ending now, under the currently open span.
    pub fn child_micros(&mut self, name: &str, duration_micros: u64) -> &mut Self {
        let now = self.clock.elapsed_micros();
        self.child_at(name, now.saturating_sub(duration_micros), duration_micros)
    }

    /// Attaches an already-completed child span with an explicit start
    /// offset, under the currently open span. The start offset is
    /// clamped to be no earlier than the parent's.
    pub fn child_at(&mut self, name: &str, start_micros: u64, duration_micros: u64) -> &mut Self {
        let parent = self.current();
        let parent_start = self.spans.get(parent).map(|p| p.start_micros).unwrap_or(0);
        let start = start_micros.max(parent_start);
        self.spans.push(OpenSpan {
            name: name.to_string(),
            parent: Some(parent),
            start_micros: start,
            end_micros: Some(start.saturating_add(duration_micros)),
            notes: Vec::new(),
        });
        self
    }

    /// Annotates the currently open span with a typed key/value pair.
    pub fn annotate(&mut self, key: &str, value: Value) -> &mut Self {
        let idx = self.current();
        if let Some(span) = self.spans.get_mut(idx) {
            span.notes.push((key.to_string(), value));
        }
        self
    }

    /// Annotates the most recently added span, open or closed.
    ///
    /// [`TraceBuilder::annotate`] targets the innermost *open* span, so
    /// it cannot reach spans attached already-completed via
    /// [`TraceBuilder::child_at`] / [`TraceBuilder::child_micros`] —
    /// this method can, and is how measurements that arrive with a
    /// completed duration (e.g. the batcher's per-batch allocation
    /// delta) land on the span they describe.
    pub fn annotate_last(&mut self, key: &str, value: Value) -> &mut Self {
        if let Some(span) = self.spans.last_mut() {
            span.notes.push((key.to_string(), value));
        }
        self
    }

    /// Annotates the trace itself (status, model name, …) rather than
    /// any one span.
    pub fn note(&mut self, key: &str, value: Value) -> &mut Self {
        self.notes.push((key.to_string(), value));
        self
    }

    /// Closes every open span (root included), records the completed
    /// trace into the tracer's recorder, and returns it.
    pub fn finish(mut self) -> Trace {
        let clock_end = self.clock.elapsed_micros();
        while let Some(idx) = self.stack.pop() {
            if let Some(span) = self.spans.get_mut(idx) {
                if span.end_micros.is_none() {
                    span.end_micros = Some(clock_end.max(span.start_micros));
                }
            }
        }
        // The trace covers every span: attached durations measured on
        // another clock (child_micros from a batcher reply) may end
        // past this builder's own elapsed time.
        let end = self
            .spans
            .iter()
            .fold(clock_end, |acc, s| acc.max(s.end_micros.unwrap_or(0)));
        if let Some(root) = self.spans.get_mut(0) {
            root.end_micros = Some(end);
        }
        let spans = self
            .spans
            .into_iter()
            .map(|s| {
                let span_end = s.end_micros.unwrap_or(end).max(s.start_micros);
                Span {
                    name: s.name,
                    parent: s.parent,
                    start_micros: s.start_micros,
                    duration_micros: span_end - s.start_micros,
                    notes: s.notes,
                }
            })
            .collect();
        let trace = Trace {
            id: self.id,
            endpoint: self.endpoint,
            total_micros: end,
            spans,
            notes: self.notes,
        };
        if let Some(recorder) = self.recorder.take() {
            recorder.record(trace.clone());
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_roundtrip() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_eq!(parse_trace_id(&format_trace_id(a)), Some(a));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id("00000000000000000"), None);
    }

    #[test]
    fn builder_yields_rooted_tree() {
        let mut t = TraceBuilder::detached("/score");
        t.child("validate");
        t.annotate("rows", Value::U64(3));
        t.close();
        t.child("score");
        t.child("featurize");
        // leave featurize and score open: finish must close them.
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 4);
        let root = &trace.spans[0];
        assert_eq!(root.name, "/score");
        assert_eq!(root.parent, None);
        assert_eq!(root.duration_micros, trace.total_micros);
        for (i, s) in trace.spans.iter().enumerate().skip(1) {
            let p = s.parent.expect("non-root spans have parents");
            assert!(p < i);
            assert!(s.start_micros >= trace.spans[p].start_micros);
            assert!(s.start_micros + s.duration_micros <= trace.total_micros);
        }
        assert_eq!(trace.spans[3].parent, Some(2)); // featurize under score
    }

    #[test]
    fn excess_closes_are_ignored() {
        let mut t = TraceBuilder::detached("/x");
        t.close().close();
        t.child("a");
        t.close().close().close();
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, Some(0));
    }

    #[test]
    fn completed_children_clamp_into_parent() {
        let mut t = TraceBuilder::detached("/x");
        t.child_micros("batch-wait", 5_000);
        t.child_at("score", 0, 250);
        let trace = t.finish();
        assert_eq!(trace.stage_micros("batch-wait"), 5_000);
        assert_eq!(trace.stage_micros("score"), 250);
        assert_eq!(trace.stage_micros("absent"), 0);
        for s in &trace.spans {
            assert!(s.start_micros <= trace.total_micros.max(s.start_micros));
        }
    }

    #[test]
    fn annotate_last_reaches_completed_children() {
        let mut t = TraceBuilder::detached("/x");
        t.child_micros("score", 250);
        t.annotate_last("alloc_bytes", Value::U64(4096));
        // annotate() still targets the open root, not the closed child.
        t.annotate("status", Value::Str("ok".into()));
        let trace = t.finish();
        let score = trace
            .spans
            .iter()
            .find(|s| s.name == "score")
            .expect("score span");
        assert_eq!(
            score.notes,
            vec![("alloc_bytes".to_string(), Value::U64(4096))]
        );
        assert_eq!(trace.spans[0].notes.len(), 1);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = TraceBuilder::detached("/a").finish();
        let mut b = TraceBuilder::detached("/a");
        b.child("a-much-longer-span-name");
        b.annotate("key", Value::Str("value".into()));
        let big = b.finish();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
