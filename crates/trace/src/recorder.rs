//! The bounded trace store: ring buffer, slow-request exemplars, and
//! per-stage histograms — all fed by the same [`Trace`]s so aggregates
//! and exemplars cannot disagree.
//!
//! Memory is fixed up front: the ring holds at most
//! [`RecorderConfig::ring_bytes`] of traces (overwrite-oldest, measured
//! by [`Trace::approx_bytes`]), and the exemplar store holds at most
//! [`RecorderConfig::slow_per_endpoint`] traces per normalized endpoint
//! label. Recording is one short [`Mutex`] critical section — no
//! allocation beyond moving the already-built trace in, no I/O.

use crate::span::Trace;
use holo_prof::ProfMutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// Histogram bucket upper bounds (microseconds) for per-stage duration
/// histograms, matching the serving latency histogram so stage and
/// end-to-end distributions line up on the same axes.
pub const STAGE_BOUNDS_MICROS: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Sizing for a [`SpanRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Byte budget for the recent-trace ring (oldest traces are evicted
    /// once the sum of [`Trace::approx_bytes`] would exceed it).
    pub ring_bytes: usize,
    /// How many worst-by-duration exemplar traces to retain per
    /// endpoint label.
    pub slow_per_endpoint: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_bytes: 1 << 20, // 1 MiB ≈ a few thousand score traces
            slow_per_endpoint: 8,
        }
    }
}

/// A snapshot of one stage's duration histogram.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage (span) name.
    pub stage: String,
    /// Per-bucket counts; index `i` counts durations `<=
    /// STAGE_BOUNDS_MICROS[i]`, with one final overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in microseconds.
    pub sum_micros: u64,
}

struct SlowEntry {
    endpoint: String,
    /// Worst-first by `total_micros`.
    traces: Vec<Trace>,
}

struct RecorderInner {
    ring: VecDeque<Trace>,
    ring_used: usize,
    slow: Vec<SlowEntry>,
    stages: Vec<StageStat>,
}

/// Bounded store of completed traces.
///
/// Lock discipline: one internal mutex (`traces`, registered in the
/// workspace lock hierarchy and instrumented as the `"traces"`
/// [`ProfMutex`] so `/v1/prof` sees its contention) guarding ring +
/// exemplars + histograms; it is never held across a call into
/// another crate.
pub struct SpanRecorder {
    config: RecorderConfig,
    traces: ProfMutex<RecorderInner>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

/// The saturating-counter idiom shared with holo-serve's metrics:
/// monotonic counters stick at `u64::MAX` instead of wrapping.
fn sat_add(counter: &AtomicU64, v: u64) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_add(v))
    });
}

impl SpanRecorder {
    /// Creates an empty recorder with the given bounds.
    pub fn new(config: RecorderConfig) -> Self {
        SpanRecorder {
            config,
            traces: ProfMutex::new(
                "traces",
                RecorderInner {
                    ring: VecDeque::new(),
                    ring_used: 0,
                    slow: Vec::new(),
                    stages: Vec::new(),
                },
            ),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Stores a completed trace: accumulates its spans into the stage
    /// histograms, offers it to the slow-exemplar store, and appends it
    /// to the ring (evicting oldest-first to stay within budget).
    pub fn record(&self, trace: Trace) {
        sat_add(&self.recorded, 1);
        let mut evicted = 0u64;
        {
            let mut inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
            for span in &trace.spans {
                observe_stage(&mut inner.stages, &span.name, span.duration_micros);
            }
            offer_slow(&mut inner.slow, &trace, self.config.slow_per_endpoint);
            let cost = trace.approx_bytes();
            if cost <= self.config.ring_bytes {
                inner.ring.push_back(trace);
                inner.ring_used = inner.ring_used.saturating_add(cost);
                while inner.ring_used > self.config.ring_bytes {
                    match inner.ring.pop_front() {
                        Some(old) => {
                            inner.ring_used = inner.ring_used.saturating_sub(old.approx_bytes());
                            evicted += 1;
                        }
                        None => break,
                    }
                }
            } else {
                // Larger than the whole budget: never enters the ring
                // (it may still survive as a slow exemplar).
                evicted = 1;
            }
        }
        if evicted > 0 {
            sat_add(&self.evicted, evicted);
        }
    }

    /// The most recent traces, newest first, up to `limit`.
    pub fn recent(&self, limit: usize) -> Vec<Trace> {
        let inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        inner.ring.iter().rev().take(limit).cloned().collect()
    }

    /// Looks a trace up by id, searching the ring and then the
    /// slow-exemplar store (a slow trace outlives its ring slot).
    pub fn get(&self, id: u64) -> Option<Trace> {
        let inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .ring
            .iter()
            .rev()
            .find(|t| t.id == id)
            .or_else(|| {
                inner
                    .slow
                    .iter()
                    .flat_map(|e| e.traces.iter())
                    .find(|t| t.id == id)
            })
            .cloned()
    }

    /// The slow-request exemplars: for each endpoint label, its worst
    /// traces ordered worst-first.
    pub fn slow(&self) -> Vec<(String, Vec<Trace>)> {
        let inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .slow
            .iter()
            .map(|e| (e.endpoint.clone(), e.traces.clone()))
            .collect()
    }

    /// Snapshot of the per-stage duration histograms, sorted by stage
    /// name for stable rendering.
    pub fn stages(&self) -> Vec<StageStat> {
        let inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = inner.stages.clone();
        out.sort_by(|a, b| a.stage.cmp(&b.stage));
        out
    }

    /// Bytes currently attributed to the ring (always ≤ the budget).
    pub fn ring_bytes_used(&self) -> usize {
        let inner = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        inner.ring_used
    }

    /// Total traces ever recorded.
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total traces evicted from (or refused by) the ring.
    pub fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

fn observe_stage(stages: &mut Vec<StageStat>, name: &str, micros: u64) {
    let stat = match stages.iter_mut().find(|s| s.stage == name) {
        Some(s) => s,
        None => {
            stages.push(StageStat {
                stage: name.to_string(),
                buckets: vec![0; STAGE_BOUNDS_MICROS.len() + 1],
                count: 0,
                sum_micros: 0,
            });
            match stages.last_mut() {
                Some(s) => s,
                None => return, // unreachable: just pushed
            }
        }
    };
    let idx = STAGE_BOUNDS_MICROS
        .iter()
        .position(|b| micros <= *b)
        .unwrap_or(STAGE_BOUNDS_MICROS.len());
    if let Some(slot) = stat.buckets.get_mut(idx) {
        *slot = slot.saturating_add(1);
    }
    stat.count = stat.count.saturating_add(1);
    stat.sum_micros = stat.sum_micros.saturating_add(micros);
}

fn offer_slow(slow: &mut Vec<SlowEntry>, trace: &Trace, cap: usize) {
    if cap == 0 {
        return;
    }
    let entry = match slow.iter_mut().find(|e| e.endpoint == trace.endpoint) {
        Some(e) => e,
        None => {
            slow.push(SlowEntry {
                endpoint: trace.endpoint.clone(),
                traces: Vec::new(),
            });
            match slow.last_mut() {
                Some(e) => e,
                None => return, // unreachable: just pushed
            }
        }
    };
    let worse_than_floor = entry
        .traces
        .last()
        .map(|t| trace.total_micros > t.total_micros)
        .unwrap_or(true);
    if entry.traces.len() < cap {
        entry.traces.push(trace.clone());
    } else if worse_than_floor {
        entry.traces.pop();
        entry.traces.push(trace.clone());
    } else {
        return;
    }
    entry
        .traces
        .sort_by_key(|t| std::cmp::Reverse(t.total_micros));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceBuilder;

    fn trace_of(endpoint: &str, stage: &str, micros: u64) -> Trace {
        let mut b = TraceBuilder::detached(endpoint);
        b.child_micros(stage, micros);
        b.finish()
    }

    #[test]
    fn ring_evicts_oldest_within_budget() {
        let one = trace_of("/s", "score", 5);
        let budget = one.approx_bytes() * 3 + 10;
        let rec = SpanRecorder::new(RecorderConfig {
            ring_bytes: budget,
            slow_per_endpoint: 2,
        });
        let mut ids = Vec::new();
        for i in 0..10 {
            let t = trace_of("/s", "score", i);
            ids.push(t.id);
            rec.record(t);
        }
        assert!(rec.ring_bytes_used() <= budget);
        assert_eq!(rec.recorded_total(), 10);
        assert!(rec.evicted_total() >= 6);
        let recent = rec.recent(100);
        assert!(recent.len() <= 4);
        // Newest first, and the newest id is still present.
        assert_eq!(recent.first().map(|t| t.id), ids.last().copied());
    }

    #[test]
    fn oversized_trace_is_refused_not_wedged() {
        let rec = SpanRecorder::new(RecorderConfig {
            ring_bytes: 16,
            slow_per_endpoint: 1,
        });
        let t = trace_of("/big", "score", 1);
        let id = t.id;
        rec.record(t);
        assert_eq!(rec.ring_bytes_used(), 0);
        assert_eq!(rec.evicted_total(), 1);
        // Still findable through the slow store.
        assert_eq!(rec.get(id).map(|t| t.id), Some(id));
    }

    #[test]
    fn slow_store_keeps_worst_per_endpoint() {
        let rec = SpanRecorder::new(RecorderConfig {
            ring_bytes: 1 << 16,
            slow_per_endpoint: 2,
        });
        for micros in [5, 500, 50, 5_000, 1] {
            let mut b = TraceBuilder::detached("/score");
            b.child_micros("score", micros);
            std::thread::sleep(std::time::Duration::from_micros(micros));
            rec.record(b.finish());
        }
        rec.record(trace_of("/other", "score", 1));
        let slow = rec.slow();
        assert_eq!(slow.len(), 2);
        let score = slow
            .iter()
            .find(|(e, _)| e == "/score")
            .map(|(_, t)| t)
            .expect("score endpoint present");
        assert_eq!(score.len(), 2);
        assert!(score[0].total_micros >= score[1].total_micros);
        // The two kept are the two slowest (~5ms and ~500µs sleeps).
        assert!(score[1].total_micros >= 400);
    }

    #[test]
    fn stage_histograms_accumulate() {
        let rec = SpanRecorder::new(RecorderConfig::default());
        rec.record(trace_of("/s", "score", 200));
        rec.record(trace_of("/s", "score", 90));
        rec.record(trace_of("/s", "encode", 2_000_000));
        let stages = rec.stages();
        let names: Vec<&str> = stages.iter().map(|s| s.stage.as_str()).collect();
        // Root spans ("/s") are stages too; sorted by name.
        assert_eq!(names, ["/s", "encode", "score"]);
        let score = &stages[2];
        assert_eq!(score.count, 2);
        assert_eq!(score.sum_micros, 290);
        assert_eq!(score.buckets[0], 1); // 90 ≤ 100
        assert_eq!(score.buckets[1], 1); // 200 ≤ 250
        let encode = &stages[1];
        assert_eq!(encode.buckets[STAGE_BOUNDS_MICROS.len()], 1); // overflow
    }

    #[test]
    fn get_finds_recent_by_id() {
        let rec = SpanRecorder::new(RecorderConfig::default());
        let t = trace_of("/s", "score", 7);
        let id = t.id;
        rec.record(t);
        assert_eq!(rec.get(id).map(|t| t.endpoint), Some("/s".to_string()));
        assert!(rec.get(id ^ 1).is_none());
    }
}
