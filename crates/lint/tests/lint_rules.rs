//! Fixture tests for every `holo-lint` rule: a positive trigger, a
//! negative non-trigger, the suppression mechanics, and — via the rule
//! filter — proof that each finding really comes from the rule under
//! test (disable the rule and the finding disappears).

use holo_lint::{lint_file, lint_file_filtered, Config, Finding};

/// A config mirroring the checked-in `lint.toml`'s shape, with fixture
/// paths substituted where it keeps the tests self-describing.
fn cfg() -> Config {
    Config::parse(
        r#"
skip = ["vendor", "target"]

[lock-order]
crates = ["serve", "stream"]
order = ["refit_lock", "state", "log", "drift"]

[no-panic-paths]
paths = ["crates/serve/src/http.rs"]

[lock-instrumentation]
crates = ["serve", "stream"]

[counter-discipline]
crates = ["serve", "stream"]
metrics-files = ["crates/serve/src/metrics.rs"]

[seed-hygiene]
allow-paths = ["crates/bench"]
"#,
    )
    .expect("fixture config parses")
}

fn unsuppressed(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.suppressed.is_none()).collect()
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    let mut r: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    r.sort_unstable();
    r.dedup();
    r
}

/// Disabling `rule` must remove every finding it produced — proof the
/// finding is attributable to that rule and the rule is actually live.
fn assert_rule_is_live(path: &str, source: &str, rule: &str) {
    let all = lint_file(path, source, &cfg());
    assert!(
        all.iter().any(|f| f.rule == rule),
        "expected a {rule} finding in the fixture"
    );
    let others: Vec<&str> = holo_lint::RULES
        .iter()
        .map(|(name, _)| *name)
        .filter(|n| *n != rule)
        .collect();
    let without = lint_file_filtered(path, source, &cfg(), Some(&others));
    assert!(
        !without.iter().any(|f| f.rule == rule),
        "disabling {rule} must remove its findings"
    );
}

// ---------------------------------------------------------- lock-order

#[test]
fn lock_order_flags_inverted_acquisition() {
    let src = r#"
fn bad(&self) {
    let log = self.log.lock().unwrap();
    let st = self.state.write().unwrap();
}
"#;
    let path = "crates/stream/src/live.rs";
    let f = lint_file(path, src, &cfg());
    assert!(
        f.iter().any(|f| f.rule == "lock-order" && f.line == 4),
        "log (rank 2) held while acquiring state (rank 1) must flag: {f:?}"
    );
    assert_rule_is_live(path, src, "lock-order");
}

#[test]
fn lock_order_accepts_hierarchy_and_drop_reacquire() {
    let src = r#"
fn good(&self) {
    let st = self.state.write().unwrap();
    let log = self.log.lock().unwrap();
    drop(log);
    drop(st);
    let st2 = self.state.read().unwrap();
}

fn scoped(&self) {
    {
        let st = self.state.read().unwrap();
    }
    let log = self.log.lock().unwrap();
    drop(log);
    let st = self.state.write().unwrap();
}
"#;
    let f = lint_file("crates/stream/src/live.rs", src, &cfg());
    assert!(
        !f.iter().any(|f| f.rule == "lock-order"),
        "in-order and drop-then-reacquire must not flag: {f:?}"
    );
}

#[test]
fn lock_order_ignores_unranked_receivers_and_other_crates() {
    // `read()` on a receiver outside the hierarchy is not an acquisition.
    let src = r#"
fn io(&self) {
    let log = self.log.lock().unwrap();
    let n = self.file.read().unwrap();
}
"#;
    let f = lint_file("crates/stream/src/live.rs", src, &cfg());
    assert!(!f.iter().any(|f| f.rule == "lock-order"), "{f:?}");
    // The same inverted pattern outside the configured crates is silent.
    let bad = r#"
fn bad(&self) {
    let log = self.log.lock().unwrap();
    let st = self.state.write().unwrap();
}
"#;
    let f = lint_file("crates/core/src/other.rs", bad, &cfg());
    assert!(!f.iter().any(|f| f.rule == "lock-order"), "{f:?}");
}

// ------------------------------------------------------ no-panic-paths

#[test]
fn no_panic_flags_unwrap_expect_macros_and_indexing() {
    let src = r#"
fn handle(&self, v: Option<u32>, xs: &[u32]) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a == 0 {
        panic!("zero");
    }
    xs[0] + b
}
"#;
    let path = "crates/serve/src/http.rs";
    let f = lint_file(path, src, &cfg());
    let np: Vec<_> = f.iter().filter(|f| f.rule == "no-panic-paths").collect();
    let lines: Vec<usize> = np.iter().map(|f| f.line).collect();
    assert!(lines.contains(&3), "unwrap must flag: {np:?}");
    assert!(lines.contains(&4), "expect must flag: {np:?}");
    assert!(lines.contains(&6), "panic! must flag: {np:?}");
    assert!(lines.contains(&8), "indexing must flag: {np:?}");
    assert_rule_is_live(path, src, "no-panic-paths");
}

#[test]
fn no_panic_is_scoped_to_configured_paths_and_skips_tests() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    v.unwrap()
}
"#;
    // Same code in a file that is not a configured hot path: silent.
    let f = lint_file("crates/serve/src/config.rs", src, &cfg());
    assert!(f.is_empty(), "{f:?}");
    // Test code inside a configured hot path: exempt.
    let tests = r#"
fn fine() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
"#;
    let f = lint_file("crates/serve/src/http.rs", tests, &cfg());
    assert!(f.is_empty(), "test regions are exempt: {f:?}");
}

#[test]
fn no_panic_does_not_flag_recovery_idioms() {
    let src = r#"
fn handle(&self) -> u64 {
    let st = self.state.read().unwrap_or_else(PoisonError::into_inner);
    st.epoch.unwrap_or(0)
}
"#;
    let f = lint_file("crates/serve/src/http.rs", src, &cfg());
    assert!(
        f.is_empty(),
        "unwrap_or / unwrap_or_else are not unwrap: {f:?}"
    );
}

// ----------------------------------------------- thread-entry-isolation

#[test]
fn thread_entry_flags_detached_spawn_without_catch_unwind() {
    let src = r#"
fn start() {
    std::thread::spawn(move || {
        do_work();
    });
}
"#;
    let path = "crates/serve/src/pool.rs";
    let f = lint_file(path, src, &cfg());
    assert!(
        f.iter()
            .any(|f| f.rule == "thread-entry-isolation" && f.line == 3),
        "{f:?}"
    );
    assert_rule_is_live(path, src, "thread-entry-isolation");
}

#[test]
fn thread_entry_accepts_catch_unwind_delegation_and_scoped() {
    let src = r#"
fn worker_loop() {
    let _ = std::panic::catch_unwind(|| step());
}

fn start_inline() {
    std::thread::spawn(move || {
        let _ = std::panic::catch_unwind(|| do_work());
    });
}

fn start_delegated() -> std::io::Result<()> {
    let h = std::thread::Builder::new()
        .name("w".into())
        .spawn(move || worker_loop())?;
    drop(h);
    Ok(())
}

fn start_scoped(xs: &[u32]) {
    std::thread::scope(|s| {
        s.spawn(|| xs.len());
    });
}
"#;
    let f = lint_file("crates/serve/src/pool.rs", src, &cfg());
    assert!(
        !f.iter().any(|f| f.rule == "thread-entry-isolation"),
        "catch_unwind (inline or one-level delegated) and scoped \
         spawns must pass: {f:?}"
    );
}

// --------------------------------------------------- counter-discipline

#[test]
fn counter_flags_wrapping_fetch_add_and_bare_increments() {
    let src = r#"
fn bump(&self) {
    self.total.fetch_add(1, Ordering::Relaxed);
}
"#;
    let path = "crates/serve/src/worker.rs";
    let f = lint_file(path, src, &cfg());
    assert!(
        f.iter()
            .any(|f| f.rule == "counter-discipline" && f.line == 3),
        "{f:?}"
    );
    assert_rule_is_live(path, src, "counter-discipline");

    // Bare compound assignment inside a metrics file.
    let metrics = r#"
fn record(&mut self) {
    self.served += 1;
}
"#;
    let f = lint_file("crates/serve/src/metrics.rs", metrics, &cfg());
    assert!(
        f.iter()
            .any(|f| f.rule == "counter-discipline" && f.line == 3),
        "{f:?}"
    );
}

#[test]
fn counter_accepts_saturating_fetch_update_and_other_crates() {
    let src = r#"
fn bump(&self) {
    let _ = self.total.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
        Some(c.saturating_add(1))
    });
}
"#;
    let f = lint_file("crates/serve/src/worker.rs", src, &cfg());
    assert!(!f.iter().any(|f| f.rule == "counter-discipline"), "{f:?}");

    // fetch_add outside the configured crates is not this rule's business.
    let other = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let f = lint_file("crates/core/src/stats.rs", other, &cfg());
    assert!(!f.iter().any(|f| f.rule == "counter-discipline"), "{f:?}");

    // `+=` outside a metrics file is ordinary arithmetic.
    let arith = "fn sum(xs: &[u64]) -> u64 { let mut s = 0; for x in xs { s += x; } s }\n";
    let f = lint_file("crates/serve/src/worker.rs", arith, &cfg());
    assert!(!f.iter().any(|f| f.rule == "counter-discipline"), "{f:?}");
}

// ------------------------------------------------------- seed-hygiene

#[test]
fn seed_flags_ambient_time_and_rng_outside_benches() {
    let src = r#"
fn seed() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_nanos() as u64
}
"#;
    let path = "crates/core/src/seed.rs";
    let f = lint_file(path, src, &cfg());
    let sh: Vec<_> = f.iter().filter(|f| f.rule == "seed-hygiene").collect();
    assert!(
        sh.iter().any(|f| f.line == 3),
        "SystemTime must flag: {sh:?}"
    );
    assert!(sh.iter().any(|f| f.line == 4), "as_nanos must flag: {sh:?}");
    assert_rule_is_live(path, src, "seed-hygiene");
}

#[test]
fn seed_allows_benches_and_explicit_seeds() {
    let src = r#"
fn seed() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap_or_default().as_nanos() as u64
}
"#;
    let f = lint_file("crates/bench/src/wall.rs", src, &cfg());
    assert!(!f.iter().any(|f| f.rule == "seed-hygiene"), "{f:?}");

    // Deterministic seed mixing (splitmix-style) is not ambient entropy.
    let mix = "fn mix(s: u64) -> u64 { s.wrapping_mul(0x9E3779B97F4A7C15) }\n";
    let f = lint_file("crates/core/src/seed.rs", mix, &cfg());
    assert!(f.is_empty(), "{f:?}");
}

// ------------------------------------------------------- suppressions

#[test]
fn suppression_with_reason_allows_and_is_reported_as_allowed() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    // lint:allow(no-panic-paths): fixture proves suppression-with-reason works
    v.unwrap()
}
"#;
    let f = lint_file("crates/serve/src/http.rs", src, &cfg());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "no-panic-paths");
    assert_eq!(
        f[0].suppressed.as_deref(),
        Some("fixture proves suppression-with-reason works")
    );
    assert!(
        unsuppressed(&f).is_empty(),
        "an allowed finding is not a failure"
    );
}

#[test]
fn trailing_suppression_covers_its_own_line_only() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    let a = v.unwrap(); // lint:allow(no-panic-paths): fixture trailing form
    v.unwrap()
}
"#;
    let f = lint_file("crates/serve/src/http.rs", src, &cfg());
    let open = unsuppressed(&f);
    assert_eq!(open.len(), 1, "{f:?}");
    assert_eq!(
        open[0].line, 4,
        "line 4 is outside the trailing comment's cover"
    );
}

#[test]
fn suppression_without_reason_is_rejected_and_does_not_suppress() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    // lint:allow(no-panic-paths):
    v.unwrap()
}
"#;
    let f = lint_file("crates/serve/src/http.rs", src, &cfg());
    let rules = rules_of(&f);
    assert!(
        rules.contains(&"suppression-missing-reason"),
        "a reasonless suppression is itself a finding: {f:?}"
    );
    assert!(
        f.iter()
            .any(|f| f.rule == "no-panic-paths" && f.suppressed.is_none()),
        "and it suppresses nothing: {f:?}"
    );
}

#[test]
fn suppression_meta_rule_survives_rule_filters() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    // lint:allow(no-panic-paths):
    v.unwrap()
}
"#;
    // Even with every ordinary rule disabled, the meta-rule still runs.
    let f = lint_file_filtered("crates/serve/src/http.rs", src, &cfg(), Some(&[]));
    assert!(
        f.iter().any(|f| f.rule == "suppression-missing-reason"),
        "{f:?}"
    );
}

#[test]
fn suppression_for_a_different_rule_does_not_cross_suppress() {
    let src = r#"
fn handle(v: Option<u32>) -> u32 {
    // lint:allow(seed-hygiene): wrong rule named on purpose
    v.unwrap()
}
"#;
    let f = lint_file("crates/serve/src/http.rs", src, &cfg());
    assert!(
        f.iter()
            .any(|f| f.rule == "no-panic-paths" && f.suppressed.is_none()),
        "a suppression names one rule, not all of them: {f:?}"
    );
}

// ---------------------------------------------- lock-instrumentation

#[test]
fn raw_mutex_construction_in_instrumented_crate_is_flagged() {
    let src = r#"
fn build() {
    let q = std::sync::Mutex::new(Vec::new());
    let s = RwLock::new(State::default());
}
"#;
    let f = lint_file("crates/serve/src/batch.rs", src, &cfg());
    let hits: Vec<&Finding> = f
        .iter()
        .filter(|f| f.rule == "lock-instrumentation")
        .collect();
    assert_eq!(hits.len(), 2, "{f:?}");
    assert!(hits[0].message.contains("ProfMutex"), "{:?}", hits[0]);
    assert!(hits[1].message.contains("ProfRwLock"), "{:?}", hits[1]);
    assert_rule_is_live("crates/serve/src/batch.rs", src, "lock-instrumentation");
}

#[test]
fn prof_wrappers_and_type_positions_do_not_trigger() {
    let src = r#"
struct S {
    state: ProfRwLock<State>,
    raw_typed: Mutex<u32>,
}
fn build() -> ProfMutex<Vec<u32>> {
    ProfMutex::new("queue", Vec::new())
}
"#;
    let f = lint_file("crates/stream/src/live.rs", src, &cfg());
    assert!(
        !f.iter().any(|f| f.rule == "lock-instrumentation"),
        "wrappers and type positions are not construction sites: {f:?}"
    );
}

#[test]
fn raw_locks_outside_instrumented_crates_are_fine() {
    let src = "fn build() { let m = Mutex::new(0u32); }";
    let f = lint_file("crates/features/src/lru.rs", src, &cfg());
    assert!(!f.iter().any(|f| f.rule == "lock-instrumentation"), "{f:?}");
}

#[test]
fn raw_locks_in_tests_are_fine() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let m = Mutex::new(0u32);
    }
}
"#;
    let f = lint_file("crates/serve/src/batch.rs", src, &cfg());
    assert!(!f.iter().any(|f| f.rule == "lock-instrumentation"), "{f:?}");
}

#[test]
fn lock_instrumentation_suppression_with_reason_works() {
    let src = r#"
fn build() {
    // lint:allow(lock-instrumentation): const-init before the profiler registry exists
    let m = Mutex::new(0u32);
}
"#;
    let f = lint_file("crates/serve/src/batch.rs", src, &cfg());
    let hit = f
        .iter()
        .find(|f| f.rule == "lock-instrumentation")
        .expect("the finding still exists, suppressed");
    assert!(hit.suppressed.is_some(), "{hit:?}");
    assert!(unsuppressed(&f)
        .iter()
        .all(|f| f.rule != "lock-instrumentation"));
}

// ------------------------------------------------------ rule catalog

#[test]
fn rule_catalog_matches_the_implemented_rules() {
    let names: Vec<&str> = holo_lint::RULES.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        [
            "lock-order",
            "no-panic-paths",
            "thread-entry-isolation",
            "counter-discipline",
            "seed-hygiene",
            "lock-instrumentation",
            "suppression-missing-reason",
        ]
    );
}
