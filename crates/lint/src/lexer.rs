//! A Rust source tokenizer for the lint pass.
//!
//! This is *not* a Rust parser: the rules only need a token stream that
//! is exact about the things grep cannot be — where strings, character
//! literals, raw strings, and (nested) comments begin and end — so that
//! `"panic!"` inside a string literal or a commented-out `unwrap()`
//! never produces a finding. Everything else (numbers, multi-character
//! operators) is deliberately approximate: numbers are lexed as plain
//! alphanumeric runs and operators arrive as single-character punctuation
//! tokens whose adjacency can be checked via byte positions (the same
//! hand-rolled-scanner idiom as `holo_serve::json` and
//! `holo_constraints::parser`).

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw `r#idents`).
    Ident,
    /// A lifetime such as `'static` (kept distinct from char literals).
    Lifetime,
    /// A numeric literal (lexed approximately; never interpreted).
    Num,
    /// A string literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// A character literal such as `'x'` or `'\n'`.
    Char,
    /// A single punctuation character.
    Punct(char),
    /// A `// …` comment (text excludes the slashes, includes doc text).
    LineComment,
    /// A `/* … */` comment (possibly nested).
    BlockComment,
}

/// One token with enough position to reconstruct adjacency.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The kind tag.
    pub kind: TokKind,
    /// Source text for idents and comments; empty for the rest (rules
    /// never need the contents of strings or numbers).
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// Byte offset of the token's first byte (for adjacency checks
    /// like recognizing `+=` or `&&` from single-char puncts).
    pub pos: usize,
}

impl Tok {
    /// `true` when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// `true` for comment tokens (skipped by structural scans).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenize `source`. Unterminated strings/comments terminate at EOF
/// rather than erroring: the linter must degrade gracefully on code the
/// compiler would reject anyway.
pub fn tokenize(source: &str) -> Vec<Tok> {
    let b = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: source[i + 2..j].to_string(),
                    line: start_line,
                    pos: start,
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (j, nl) = skip_block_comment(b, i + 2);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: source[i + 2..j.saturating_sub(2).max(i + 2)].to_string(),
                    line: start_line,
                    pos: start,
                });
                line += nl;
                i = j;
            }
            b'"' => {
                let (j, nl) = skip_string(b, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                    pos: start,
                });
                line += nl;
                i = j;
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`, `'_`) vs char literal
                // (`'x'`, `'\n'`): a lifetime is `'` + ident-start NOT
                // followed by a closing quote.
                let is_lifetime = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(&n), after) => {
                        (n.is_ascii_alphabetic() || n == b'_') && after != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: source[i + 1..j].to_string(),
                        line: start_line,
                        pos: start,
                    });
                    i = j;
                } else {
                    let (j, nl) = skip_char_literal(b, i + 1);
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: start_line,
                        pos: start,
                    });
                    line += nl;
                    i = j;
                }
            }
            // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…".
            b'r' | b'b' if raw_or_byte_string_start(b, i) => {
                let (j, nl) = skip_raw_or_byte_string(b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                    pos: start,
                });
                line += nl;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                // Raw identifiers (`r#match`) reach here only when not a
                // raw string; include the `r#` prefix in the ident scan.
                if c == b'r' && b.get(i + 1) == Some(&b'#') {
                    j += 2;
                }
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: source[i..j].trim_start_matches("r#").to_string(),
                    line: start_line,
                    pos: start,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Approximate: an alphanumeric run. `1.5` arrives as
                // Num(1) Punct(.) Num(5) — fine, rules never read
                // numbers.
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: String::new(),
                    line: start_line,
                    pos: start,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: String::new(),
                    line: start_line,
                    pos: start,
                });
                i += 1;
            }
        }
    }
    toks
}

/// `true` when position `i` starts a raw/byte string rather than the
/// identifiers `r`/`b` (e.g. `r"x"`, `r#"x"#`, `b"x"`, `br#"x"#`).
fn raw_or_byte_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'"') {
            return true;
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        let mut k = j;
        while b.get(k) == Some(&b'#') {
            k += 1;
        }
        // `r#ident` (raw identifier) has no quote after the hashes.
        return k > j && b.get(k) == Some(&b'"') || (k == j && b.get(k) == Some(&b'"'));
    }
    false
}

/// Skip a `"…"` body starting just after the opening quote; returns
/// (index after closing quote, newlines crossed).
fn skip_string(b: &[u8], mut i: usize) -> (usize, usize) {
    let mut nl = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Skip a char literal body starting just after the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize) -> (usize, usize) {
    let nl = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (i + 1, nl),
            b'\n' => {
                // A stray `'` (e.g. macro token) — don't eat the file.
                return (i, nl);
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Skip `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` starting at the prefix.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize) -> (usize, usize) {
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        i += 1;
        let mut hashes = 0;
        while b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        let mut nl = 0;
        while i < b.len() {
            if b[i] == b'\n' {
                nl += 1;
            }
            if b[i] == b'"' {
                let mut k = 0;
                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return (i + 1 + hashes, nl);
                }
            }
            i += 1;
        }
        (i, nl)
    } else {
        // b"…" — escapes like a normal string.
        skip_string(b, i + 1)
    }
}

/// Skip a (nested) block comment body starting after `/*`; returns
/// (index after the final `*/`, newlines crossed).
fn skip_block_comment(b: &[u8], mut i: usize) -> (usize, usize) {
    let mut depth = 1;
    let mut nl = 0;
    while i < b.len() && depth > 0 {
        match (b[i], b.get(i + 1)) {
            (b'/', Some(&b'*')) => {
                depth += 1;
                i += 2;
            }
            (b'*', Some(&b'/')) => {
                depth -= 1;
                i += 2;
            }
            (b'\n', _) => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts_tokenize() {
        let toks = tokenize("let x = a.unwrap();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "a", "unwrap"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        // `unwrap` inside a string must not surface as an identifier.
        let toks = tokenize(r#"let s = "x.unwrap() panic!";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let toks = tokenize(r###"let s = r#"contains "quotes" and unwrap()"#; s.len()"###);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("len")));
    }

    #[test]
    fn comments_are_captured_not_parsed() {
        let toks = tokenize("// lint:allow(x): reason\ncall(); /* panic! */");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].text, " lint:allow(x): reason");
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let toks = tokenize("/* a /* b */ still comment */ ident");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            1,
            "{toks:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn char_escapes_do_not_derail_the_scan() {
        let toks = tokenize(r"let c = '\''; let d = '\n'; x.lock()");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert!(toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nb.unwrap()";
        let toks = tokenize(src);
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn byte_and_raw_idents_lex_as_idents() {
        let toks = tokenize(r##"let m = b"HOLOLIVE"; let r#type = 3;"##);
        assert!(toks.iter().any(|t| t.is_ident("type")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(kinds("br#\"x\"#"), vec![TokKind::Str]);
    }

    #[test]
    fn adjacency_is_recoverable_from_positions() {
        let toks = tokenize("a += 1; b + c");
        let plus_eq: Vec<_> = toks
            .windows(2)
            .filter(|w| w[0].is_punct('+') && w[1].is_punct('=') && w[1].pos == w[0].pos + 1)
            .collect();
        assert_eq!(plus_eq.len(), 1);
    }
}
