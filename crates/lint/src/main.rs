//! The `holo-lint` CLI.
//!
//! ```text
//! holo-lint [--root DIR] [--config FILE] [--json FILE] [--check] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (or informational run), `1` unsuppressed
//! findings in `--check` mode, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use holo_lint::{Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    check: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        check: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a file")?));
            }
            "--check" => args.check = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str =
    "usage: holo-lint [--root DIR] [--config FILE] [--json FILE] [--check] [--list-rules]

  --root DIR     workspace root (default: .)
  --config FILE  lint config (default: <root>/lint.toml)
  --json FILE    also write the full findings report as JSON
  --check        CI mode: exit 1 when any unsuppressed finding remains
  --list-rules   print the rule catalog and exit";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("holo-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (name, desc) in RULES {
            println!("{name:26} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("holo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match holo_lint::lint_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("holo-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.render_json()) {
            eprintln!("holo-lint: write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_human());
    if args.check && report.unsuppressed_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
