//! Structural view of one source file: the token stream plus the three
//! overlays every rule needs — which lines are test-only code, which
//! lines carry `lint:allow` suppressions, and where each function
//! body begins and ends.

use crate::lexer::{tokenize, Tok, TokKind};

/// A parsed `// lint:allow(<rule>): <reason>` suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The free-text reason after the colon (trimmed; may be empty —
    /// the meta-rule rejects that).
    pub reason: String,
    /// Line the comment sits on.
    pub line: usize,
    /// Lines the suppression covers: its own line, and — when the
    /// comment stands alone on its line — the next line too.
    pub covers: Vec<usize>,
}

/// One `fn` item with a resolved body span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}` (or last token on EOF).
    pub body_close: usize,
}

/// Token stream plus overlays for one file.
pub struct FileModel {
    /// Workspace-relative path label (used in findings).
    pub path: String,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// For each token, `true` when it sits inside `#[cfg(test)] mod`
    /// or a `#[test]` function — rules skip those regions.
    pub in_test: Vec<bool>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Function spans, in source order (nested fns both appear).
    pub fns: Vec<FnSpan>,
}

impl FileModel {
    /// Tokenize and overlay `source`.
    pub fn build(path: &str, source: &str) -> FileModel {
        let toks = tokenize(source);
        let in_test = mark_test_regions(&toks);
        let suppressions = parse_suppressions(&toks);
        let fns = find_fns(&toks);
        FileModel {
            path: path.to_string(),
            toks,
            in_test,
            suppressions,
            fns,
        }
    }

    /// Next non-comment token index at or after `i`.
    pub fn skip_comments(&self, mut i: usize) -> usize {
        while i < self.toks.len() && self.toks[i].is_comment() {
            i += 1;
        }
        i
    }

    /// Previous non-comment token index strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !self.toks[j].is_comment() {
                return Some(j);
            }
        }
        None
    }

    /// `true` when a suppression for `rule` covers `line`.
    pub fn suppressed(&self, rule: &str, line: usize) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.rule == rule && s.covers.contains(&line))
    }
}

/// Mark tokens inside `#[cfg(test)]`-attributed items and `#[test]`
/// functions. Attribute detection is structural: `#` `[` … `]`
/// containing the idents `cfg` `test` (or just `test`) immediately
/// before an item whose brace-matched body is then marked.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut marked = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut k = 0;
    while k < code.len() {
        let i = code[k];
        if toks[i].is_punct('#') && code.get(k + 1).is_some_and(|&j| toks[j].is_punct('[')) {
            // Scan the attribute body up to the matching `]`.
            let mut depth = 0;
            let mut saw_test = false;
            let mut saw_not = false;
            let mut end = k + 1;
            for (off, &j) in code.iter().enumerate().skip(k + 1) {
                match &toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            end = off;
                            break;
                        }
                    }
                    TokKind::Ident => {
                        // `#[test]` and `#[cfg(test)]` mark a test
                        // region; `#[cfg(not(test))]` must not.
                        if toks[j].text == "test" {
                            saw_test = true;
                        }
                        if toks[j].text == "not" {
                            saw_not = true;
                        }
                    }
                    _ => {}
                }
            }
            let is_test_attr = saw_test && !saw_not;
            if is_test_attr {
                // Skip further attributes, then mark the following item
                // through its matched braces (or to the `;` for
                // brace-less items like `use`).
                let mut m = end + 1;
                while m + 1 < code.len()
                    && toks[code[m]].is_punct('#')
                    && toks[code[m + 1]].is_punct('[')
                {
                    let mut d = 0;
                    let mut n = m + 1;
                    while n < code.len() {
                        if toks[code[n]].is_punct('[') {
                            d += 1;
                        } else if toks[code[n]].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        n += 1;
                    }
                    m = n + 1;
                }
                let mut depth = 0;
                let mut entered = false;
                let mut n = m;
                while n < code.len() {
                    let j = code[n];
                    marked[j] = true;
                    if toks[j].is_punct('{') {
                        depth += 1;
                        entered = true;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if entered && depth == 0 {
                            break;
                        }
                    } else if toks[j].is_punct(';') && !entered {
                        break;
                    }
                    n += 1;
                }
                k = n + 1;
                continue;
            }
        }
        k += 1;
    }
    // Comments inherit the mark of the nearest following code token so
    // suppression comments in tests stay "in test".
    let mut next_mark = false;
    for i in (0..toks.len()).rev() {
        if toks[i].is_comment() {
            marked[i] = next_mark;
        } else {
            next_mark = marked[i];
        }
    }
    marked
}

/// Parse `lint:allow(rule): reason` out of line comments. A comment
/// that is the only thing on its line covers the next line as well
/// (the usual "suppress the statement below" shape); a trailing
/// comment covers only its own line.
fn parse_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text.trim();
        let Some(rest) = text.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim();
        let reason = after
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("")
            .to_string();
        // Standalone if no code token earlier on the same line.
        let standalone = !toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let mut covers = vec![t.line];
        if standalone {
            covers.push(t.line + 1);
        }
        out.push(Suppression {
            rule,
            reason,
            line: t.line,
            covers,
        });
    }
    out
}

/// Find every `fn name … { body }` and resolve the body braces. Works
/// for free fns, methods, and nested fns; `fn` in trait definitions
/// without bodies (ending `;`) yields no span.
fn find_fns(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    for (k, &i) in code.iter().enumerate() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(&name_i) = code.get(k + 1) else {
            continue;
        };
        if toks[name_i].kind != TokKind::Ident {
            continue;
        }
        // Walk to the body `{`, skipping generics/args/where-clauses.
        // `{` inside the where clause can't occur before the body in
        // this grammar subset; a `;` first means no body.
        let mut depth_paren = 0;
        let mut depth_angle = 0i32;
        let mut body_open = None;
        for &j in &code[k + 2..] {
            match toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth_paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth_paren -= 1,
                TokKind::Punct('<') if depth_paren == 0 => depth_angle += 1,
                TokKind::Punct('>') if depth_paren == 0 && depth_angle > 0 => depth_angle -= 1,
                TokKind::Punct('{') if depth_paren == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Punct(';') if depth_paren == 0 => break,
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        // Match the closing brace.
        let mut depth = 0;
        let mut close = *code.last().unwrap_or(&open);
        for &j in code.iter().filter(|&&j| j >= open) {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        out.push(FnSpan {
            name: toks[name_i].text.clone(),
            line: toks[i].line,
            fn_tok: i,
            body_open: open,
            body_close: close,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn after() { c.lock(); }";
        let m = FileModel::build("x.rs", src);
        let unwraps: Vec<(usize, bool)> = m
            .toks
            .iter()
            .zip(&m.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(t, &b)| (t.line, b))
            .collect();
        assert_eq!(unwraps, vec![(1, false), (4, true)]);
        let lock = m
            .toks
            .iter()
            .zip(&m.in_test)
            .find(|(t, _)| t.is_ident("lock"))
            .unwrap();
        assert!(!lock.1, "code after the test module is live again");
    }

    #[test]
    fn test_attr_fns_are_marked() {
        let src = "#[test]\nfn check() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        let m = FileModel::build("x.rs", src);
        let flags: Vec<bool> = m
            .toks
            .iter()
            .zip(&m.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &b)| b)
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let src = "// lint:allow(no-panic-paths): index bounded by construction\nlet v = q[0];\nlet w = q[1];";
        let m = FileModel::build("x.rs", src);
        assert!(m.suppressed("no-panic-paths", 2).is_some());
        assert!(m.suppressed("no-panic-paths", 3).is_none());
        assert_eq!(m.suppressions[0].reason, "index bounded by construction");
    }

    #[test]
    fn trailing_suppression_covers_its_own_line_only() {
        let src = "let v = q[0]; // lint:allow(no-panic-paths): bounded\nlet w = q[1];";
        let m = FileModel::build("x.rs", src);
        assert!(m.suppressed("no-panic-paths", 1).is_some());
        assert!(m.suppressed("no-panic-paths", 2).is_none());
    }

    #[test]
    fn missing_reason_parses_with_empty_reason() {
        let src = "// lint:allow(lock-order)\nstate.write();";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.suppressions.len(), 1);
        assert!(m.suppressions[0].reason.is_empty());
    }

    #[test]
    fn fn_spans_resolve_bodies_with_generics_and_nesting() {
        let src = "fn outer<T: Fn() -> Vec<u8>>(x: T) -> Result<(), E> {\n    fn inner() { helper(); }\n    inner();\n}\nfn plain() {}";
        let m = FileModel::build("x.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "plain"]);
        let outer = &m.fns[0];
        assert!(m.toks[outer.body_close].line >= 4);
    }

    #[test]
    fn bodiless_trait_fns_yield_no_span() {
        let m = FileModel::build("x.rs", "trait T { fn must(&self) -> u8; }\nfn real() {}");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}
