//! Rendering: human terminal output and a machine-readable JSON
//! report (hand-rolled serializer, same as the rest of the workspace —
//! no serde).

use crate::rules::Finding;

/// The outcome of a full workspace pass.
pub struct Report {
    /// Every finding, suppressed ones included (the JSON report is an
    /// audit trail, not just a failure list).
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a reasoned suppression.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Count of unsuppressed findings (the `--check` exit criterion).
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Human-readable listing: unsuppressed findings first, then the
    /// allowed ones with their reasons, then a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        let allowed: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.suppressed.is_some())
            .collect();
        if !allowed.is_empty() {
            out.push('\n');
            for f in &allowed {
                out.push_str(&format!(
                    "{}:{}: [{}] allowed: {}\n",
                    f.path,
                    f.line,
                    f.rule,
                    f.suppressed.as_deref().unwrap_or(""),
                ));
            }
        }
        out.push_str(&format!(
            "{} finding(s): {} unsuppressed, {} allowed; {} file(s) scanned\n",
            self.findings.len(),
            self.unsuppressed_count(),
            allowed.len(),
            self.files_scanned,
        ));
        out
    }

    /// The JSON report uploaded as a CI artifact.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"unsuppressed\": {},\n",
            self.unsuppressed_count()
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            match &f.suppressed {
                Some(reason) => out.push_str(&format!(
                    "\"suppressed\": true, \"reason\": {}",
                    json_str(reason)
                )),
                None => out.push_str("\"suppressed\": false, \"reason\": null"),
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_NO_PANIC;

    fn sample() -> Report {
        Report {
            findings: vec![
                Finding {
                    rule: RULE_NO_PANIC,
                    path: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "a \"quoted\" problem".into(),
                    suppressed: None,
                },
                Finding {
                    rule: RULE_NO_PANIC,
                    path: "crates/x/src/a.rs".into(),
                    line: 9,
                    message: "allowed one".into(),
                    suppressed: Some("bounded by construction".into()),
                },
            ],
            files_scanned: 2,
        }
    }

    #[test]
    fn human_output_separates_live_from_allowed() {
        let r = sample();
        let text = r.render_human();
        assert!(text.contains("crates/x/src/a.rs:3: [no-panic-paths] a \"quoted\" problem"));
        assert!(text.contains("a.rs:9: [no-panic-paths] allowed: bounded by construction"));
        assert!(text.contains("2 finding(s): 1 unsuppressed, 1 allowed; 2 file(s) scanned"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let r = sample();
        let j = r.render_json();
        assert!(j.contains("\"unsuppressed\": 1"));
        assert!(j.contains("\"a \\\"quoted\\\" problem\""));
        assert!(j.contains("\"suppressed\": true, \"reason\": \"bounded by construction\""));
        assert!(j.contains("\"suppressed\": false, \"reason\": null"));
    }

    #[test]
    fn empty_report_renders_valid_json() {
        let r = Report {
            findings: vec![],
            files_scanned: 40,
        };
        let j = r.render_json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"unsuppressed\": 0"));
    }
}
