//! The rule engine: six invariant rules plus the suppression
//! meta-rule, all deny-by-default.
//!
//! Each rule encodes an invariant the workspace already claims in
//! prose (module docs, CHANGES.md hardening notes); the engine turns
//! those claims into machine-checked facts. See the crate docs for the
//! full catalog and the history of each invariant.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::model::{FileModel, FnSpan};

/// One finding. `suppressed` carries the written reason when a
/// `// lint:allow(rule): reason` covers the line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human explanation of the violation and the expected fix.
    pub message: String,
    /// The suppression reason, when the finding is allowed in-source.
    pub suppressed: Option<String>,
}

/// Rule names for the lock-order invariant etc. (stable identifiers —
/// these are what `lint:allow(...)` names).
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// See [`RULE_LOCK_ORDER`].
pub const RULE_NO_PANIC: &str = "no-panic-paths";
/// See [`RULE_LOCK_ORDER`].
pub const RULE_THREAD_ENTRY: &str = "thread-entry-isolation";
/// See [`RULE_LOCK_ORDER`].
pub const RULE_COUNTER: &str = "counter-discipline";
/// See [`RULE_LOCK_ORDER`].
pub const RULE_SEED: &str = "seed-hygiene";
/// See [`RULE_LOCK_ORDER`].
pub const RULE_LOCK_INSTR: &str = "lock-instrumentation";
/// The meta-rule: a suppression without a reason is itself a finding,
/// and the reasonless suppression does not suppress anything.
pub const RULE_SUPPRESSION_REASON: &str = "suppression-missing-reason";

/// `(name, one-line description)` for every rule, in catalog order.
pub const RULES: [(&str, &str); 7] = [
    (
        RULE_LOCK_ORDER,
        "lock acquisitions must follow the hierarchy declared in lint.toml [lock-order]",
    ),
    (
        RULE_NO_PANIC,
        "no unwrap/expect/panic!/unreachable!/indexing in request & ingest hot paths",
    ),
    (
        RULE_THREAD_ENTRY,
        "every detached thread entry closure must route through catch_unwind",
    ),
    (
        RULE_COUNTER,
        "metrics counters must saturate (fetch_update + saturating_*), never wrap",
    ),
    (
        RULE_SEED,
        "no time-derived or ambient randomness seeding outside benches",
    ),
    (
        RULE_LOCK_INSTR,
        "locks in instrumented crates must be holo_prof wrappers, not raw Mutex/RwLock",
    ),
    (
        RULE_SUPPRESSION_REASON,
        "every lint:allow suppression must carry a written reason",
    ),
];

/// Lint one file's source against every rule.
pub fn lint_file(path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    lint_file_filtered(path, source, cfg, None)
}

/// Lint with a rule filter (`None` = all rules). The suppression
/// meta-rule always runs — it polices the suppression mechanism
/// itself, not an invariant you can opt out of.
pub fn lint_file_filtered(
    path: &str,
    source: &str,
    cfg: &Config,
    enabled: Option<&[&str]>,
) -> Vec<Finding> {
    let m = FileModel::build(path, source);
    let on = |r: &str| enabled.is_none_or(|e| e.contains(&r));
    let mut findings = Vec::new();
    if on(RULE_LOCK_ORDER) {
        lock_order(&m, cfg, &mut findings);
    }
    if on(RULE_NO_PANIC) {
        no_panic(&m, cfg, &mut findings);
    }
    if on(RULE_THREAD_ENTRY) {
        thread_entry(&m, &mut findings);
    }
    if on(RULE_COUNTER) {
        counters(&m, cfg, &mut findings);
    }
    if on(RULE_SEED) {
        seeds(&m, cfg, &mut findings);
    }
    if on(RULE_LOCK_INSTR) {
        lock_instrumentation(&m, cfg, &mut findings);
    }
    // A suppression only works when it carries a reason; a reasonless
    // one leaves the finding live AND adds a meta finding.
    for f in &mut findings {
        if let Some(s) = m.suppressed(f.rule, f.line) {
            if !s.reason.is_empty() {
                f.suppressed = Some(s.reason.clone());
            }
        }
    }
    for s in &m.suppressions {
        if s.reason.is_empty() {
            findings.push(Finding {
                rule: RULE_SUPPRESSION_REASON,
                path: m.path.clone(),
                line: s.line,
                message: format!(
                    "suppression of `{0}` has no reason; write `// lint:allow({0}): <why this is safe>`",
                    s.rule
                ),
                suppressed: None,
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// `true` when `path` is inside one of the named `crates/<name>/` trees.
fn in_crates(path: &str, crates: &[String]) -> bool {
    crates
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// Next code (non-comment) token index after `i`.
fn after(m: &FileModel, i: usize) -> Option<usize> {
    let j = m.skip_comments(i + 1);
    (j < m.toks.len()).then_some(j)
}

/// `true` when token `i` is an identifier called as `.name(`.
fn is_method_call(m: &FileModel, i: usize) -> bool {
    m.prev_code(i).is_some_and(|p| m.toks[p].is_punct('.'))
        && after(m, i).is_some_and(|j| m.toks[j].is_punct('('))
}

// ---------------------------------------------------------------- lock-order

/// A currently-held guard during the per-function simulation.
struct Held {
    /// The `let` binding name, if any (`None` = statement-transient).
    binding: Option<String>,
    /// The lock field name (`state`, `log`, …).
    lock: String,
    /// Rank in the declared hierarchy (lower = outermost).
    rank: usize,
    /// Brace depth at acquisition (guards die when their block closes).
    depth: i32,
}

/// Rule 1: per-function held-set simulation over `.lock()`/`.read()`/
/// `.write()` acquisitions on the configured lock names. An acquisition
/// of rank `r` while any guard of rank `>= r` is held contradicts the
/// declared hierarchy and is flagged. Guards bound by `let` live until
/// their block closes or an explicit `drop(name)`; guards used inline
/// live to the end of their statement.
fn lock_order(m: &FileModel, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.lock_order.is_empty() || !in_crates(&m.path, &cfg.lock_order_crates) {
        return;
    }
    for f in &m.fns {
        if m.in_test[f.fn_tok] {
            continue;
        }
        // Token ranges of fns nested inside this body: their
        // acquisitions are separate executions, not part of this
        // function's held set (they get their own pass).
        let nested: Vec<(usize, usize)> = m
            .fns
            .iter()
            .filter(|g| g.fn_tok > f.body_open && g.body_close < f.body_close)
            .map(|g| (g.fn_tok, g.body_close))
            .collect();
        lock_order_body(m, f, &nested, cfg, out);
    }
}

fn lock_order_body(
    m: &FileModel,
    f: &FnSpan,
    nested: &[(usize, usize)],
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut pending_let: Option<String> = None;
    let mut i = f.body_open + 1;
    while i < f.body_close {
        if let Some(&(_, end)) = nested.iter().find(|&&(s, e)| i >= s && i <= e) {
            i = end + 1;
            continue;
        }
        let t = &m.toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        match &t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                held.retain(|h| h.depth < depth);
                depth -= 1;
                pending_let = None;
            }
            TokKind::Punct(';') => {
                held.retain(|h| h.binding.is_some());
                pending_let = None;
            }
            TokKind::Ident if t.text == "let" => {
                // `let [mut] NAME =` — capture the binding target so
                // the next acquisition in this statement binds to it.
                let mut j = after(m, i);
                if let Some(k) = j {
                    if m.toks[k].is_ident("mut") {
                        j = after(m, k);
                    }
                }
                if let Some(name_i) = j {
                    if m.toks[name_i].kind == TokKind::Ident {
                        if let Some(eq) = after(m, name_i) {
                            if m.toks[eq].is_punct('=') {
                                pending_let = Some(m.toks[name_i].text.clone());
                            }
                        }
                    }
                }
            }
            TokKind::Ident if t.text == "drop" => {
                // `drop(NAME)` releases the named guard early.
                if let Some(open) = after(m, i).filter(|&j| m.toks[j].is_punct('(')) {
                    if let Some(arg) = after(m, open) {
                        if m.toks[arg].kind == TokKind::Ident {
                            if let Some(close) = after(m, arg) {
                                if m.toks[close].is_punct(')') {
                                    let name = &m.toks[arg].text;
                                    held.retain(|h| h.binding.as_deref() != Some(name));
                                }
                            }
                        }
                    }
                }
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "lock" | "read" | "write") && is_method_call(m, i) =>
            {
                // Must be an argument-less call (`.read()` the RwLock
                // way, not `.read(buf)` the io::Read way) on a
                // receiver named in the hierarchy.
                let empty_parens = after(m, i)
                    .and_then(|open| after(m, open))
                    .is_some_and(|close| m.toks[close].is_punct(')'));
                let recv = m
                    .prev_code(i)
                    .and_then(|dot| m.prev_code(dot))
                    .filter(|&r| m.toks[r].kind == TokKind::Ident)
                    .map(|r| m.toks[r].text.clone());
                if let (true, Some(recv)) = (empty_parens, recv) {
                    if let Some(rank) = cfg.lock_rank(&recv) {
                        for h in &held {
                            if h.rank >= rank {
                                out.push(Finding {
                                    rule: RULE_LOCK_ORDER,
                                    path: m.path.clone(),
                                    line: t.line,
                                    message: format!(
                                        "fn `{}` acquires `{}` while holding `{}`; declared order is {}",
                                        f.name,
                                        recv,
                                        h.lock,
                                        cfg.lock_order.join(" -> "),
                                    ),
                                    suppressed: None,
                                });
                            }
                        }
                        held.push(Held {
                            binding: pending_let.take(),
                            lock: recv,
                            rank,
                            depth,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

// ------------------------------------------------------------ no-panic-paths

/// Keywords that can legally precede `[` without it being a postfix
/// index (array literals, patterns, types).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "for", "in", "return", "break", "match", "if", "else", "as", "where", "let", "impl", "dyn",
];

/// Rule 2: in the configured hot-path files, flag every construct that
/// can panic — `.unwrap()`, `.expect()`, `panic!`/`unreachable!`/
/// `todo!`/`unimplemented!`, and postfix indexing/slicing `x[..]`.
/// Hot paths must return typed errors; panic isolation at the thread
/// boundary is a backstop, not a design.
fn no_panic(m: &FileModel, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.no_panic_paths.iter().any(|p| p == &m.path) {
        return;
    }
    let mut push = |line: usize, message: String| {
        out.push(Finding {
            rule: RULE_NO_PANIC,
            path: m.path.clone(),
            line,
            message,
            suppressed: None,
        });
    };
    for i in 0..m.toks.len() {
        if m.toks[i].is_comment() || m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        match &t.kind {
            TokKind::Ident => {
                if matches!(t.text.as_str(), "unwrap" | "expect") && is_method_call(m, i) {
                    push(
                        t.line,
                        format!(
                            "`.{}()` can panic in a hot path; propagate a typed error instead",
                            t.text
                        ),
                    );
                } else if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && after(m, i).is_some_and(|j| m.toks[j].is_punct('!'))
                {
                    push(
                        t.line,
                        format!("`{}!` in a hot path; return a typed error instead", t.text),
                    );
                }
            }
            TokKind::Punct('[') => {
                let postfix = m.prev_code(i).is_some_and(|p| {
                    let pt = &m.toks[p];
                    match &pt.kind {
                        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&pt.text.as_str()),
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        _ => false,
                    }
                });
                if postfix {
                    push(
                        t.line,
                        "indexing/slicing can panic in a hot path; use `.get()`/`.get_mut()` or a checked split".to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------- thread-entry-isolation

/// Rule 3: every *detached* thread spawn (`std::thread::spawn` or
/// `thread::Builder…spawn`) must route its closure through
/// `catch_unwind` — directly in the closure body, or in the single
/// same-file function the closure delegates to. Scoped spawns
/// (`thread::scope`'s `s.spawn`) are exempt by design: their panics
/// propagate deterministically to the joining caller instead of
/// unwinding a detached thread.
fn thread_entry(m: &FileModel, out: &mut Vec<Finding>) {
    for i in 0..m.toks.len() {
        if m.toks[i].is_comment() || m.in_test[i] || !m.toks[i].is_ident("spawn") {
            continue;
        }
        let Some(open) = after(m, i).filter(|&j| m.toks[j].is_punct('(')) else {
            continue;
        };
        // Walk back to the statement boundary classifying the spawn.
        let mut detached = false;
        let mut scoped = false;
        let mut j = i;
        while let Some(p) = m.prev_code(j) {
            match &m.toks[p].kind {
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
                TokKind::Ident => match m.toks[p].text.as_str() {
                    "thread" | "Builder" => detached = true,
                    "scope" => scoped = true,
                    _ => {}
                },
                _ => {}
            }
            j = p;
        }
        if !detached || scoped {
            continue;
        }
        // The spawn-call argument span.
        let mut depth = 0;
        let mut close = open;
        for k in open..m.toks.len() {
            if m.toks[k].is_punct('(') {
                depth += 1;
            } else if m.toks[k].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
        }
        if span_mentions(m, open + 1, close, "catch_unwind")
            || delegate_catches_unwind(m, open + 1, close)
        {
            continue;
        }
        out.push(Finding {
            rule: RULE_THREAD_ENTRY,
            path: m.path.clone(),
            line: m.toks[i].line,
            message: "detached thread entry does not route through catch_unwind; a panic here \
                      kills the thread silently instead of being isolated and counted"
                .to_string(),
            suppressed: None,
        });
    }
}

/// `true` when any identifier token in `[from, to)` equals `name`.
fn span_mentions(m: &FileModel, from: usize, to: usize, name: &str) -> bool {
    m.toks[from..to.min(m.toks.len())]
        .iter()
        .any(|t| t.is_ident(name))
}

/// One level of resolution: when the spawn closure body is a single
/// call `f(...)` to a function defined in this file, check `f`'s body
/// for `catch_unwind`.
fn delegate_catches_unwind(m: &FileModel, from: usize, to: usize) -> bool {
    // Find the closure parameter pipes `|...|` (or `||`).
    let mut k = from;
    let mut pipes = 0;
    while k < to && pipes < 2 {
        if m.toks[k].is_punct('|') {
            pipes += 1;
        }
        k += 1;
    }
    if pipes < 2 {
        return false;
    }
    let body = m.skip_comments(k);
    if body >= to || m.toks[body].kind != TokKind::Ident {
        return false;
    }
    let callee = &m.toks[body].text;
    if !after(m, body).is_some_and(|j| m.toks[j].is_punct('(')) {
        return false;
    }
    m.fns
        .iter()
        .filter(|g| &g.name == callee)
        .any(|g| span_mentions(m, g.body_open, g.body_close + 1, "catch_unwind"))
}

// --------------------------------------------------------- counter-discipline

/// Rule 4: in the configured crates, atomic counters must never use
/// wrapping `fetch_add`/`fetch_sub` — the repo's idiom is
/// `fetch_update` with `saturating_add` (`holo_serve::metrics::sat_add`),
/// so a long-lived server pegs at `u64::MAX` instead of faking a
/// counter reset. In declared metrics files, bare `+=`/`-=` is flagged
/// too.
fn counters(m: &FileModel, cfg: &Config, out: &mut Vec<Finding>) {
    let crate_scoped = in_crates(&m.path, &cfg.counter_crates);
    let metrics_file = cfg.counter_metrics_files.iter().any(|p| p == &m.path);
    if !crate_scoped && !metrics_file {
        return;
    }
    for i in 0..m.toks.len() {
        if m.toks[i].is_comment() || m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        match &t.kind {
            TokKind::Ident
                if matches!(t.text.as_str(), "fetch_add" | "fetch_sub") && is_method_call(m, i) =>
            {
                out.push(Finding {
                    rule: RULE_COUNTER,
                    path: m.path.clone(),
                    line: t.line,
                    message: format!(
                        "wrapping `{}` on an atomic counter; use fetch_update with saturating \
                         arithmetic (the sat_add idiom in holo_serve::metrics)",
                        t.text
                    ),
                    suppressed: None,
                });
            }
            TokKind::Punct(op @ ('+' | '-')) if metrics_file => {
                let compound = m
                    .toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('=') && n.pos == t.pos + 1);
                if compound {
                    out.push(Finding {
                        rule: RULE_COUNTER,
                        path: m.path.clone(),
                        line: t.line,
                        message: format!(
                            "bare `{op}=` on metrics state; use saturating arithmetic"
                        ),
                        suppressed: None,
                    });
                }
            }
            _ => {}
        }
    }
}

// --------------------------------------------------------------- seed-hygiene

/// Rule 5: outside the allow-listed bench trees, no time-derived or
/// ambient entropy may feed seeds — `SystemTime`, `thread_rng`,
/// `from_entropy`, and nanosecond extraction (`.as_nanos()`/
/// `.subsec_nanos()`, the classic clock-to-seed step) are all flagged.
/// Every experiment seed must be explicit so bitwise score parity
/// holds across runs (this mechanizes the manual seed audit from the
/// scenario-suite PR).
fn seeds(m: &FileModel, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg
        .seed_allow_paths
        .iter()
        .any(|p| m.path.starts_with(p.as_str()))
    {
        return;
    }
    for i in 0..m.toks.len() {
        if m.toks[i].is_comment() || m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let ambient_type = matches!(
            t.text.as_str(),
            "SystemTime" | "thread_rng" | "from_entropy"
        );
        let nanos_call =
            matches!(t.text.as_str(), "as_nanos" | "subsec_nanos") && is_method_call(m, i);
        if ambient_type || nanos_call {
            out.push(Finding {
                rule: RULE_SEED,
                path: m.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` is an ambient/time-derived entropy source; seeds must be explicit \
                     and deterministic outside benches",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

// ------------------------------------------------------- lock-instrumentation

/// Rule 6: in the configured crates, every lock must be one of the
/// instrumented `holo_prof` wrappers — a raw `Mutex::new(` /
/// `RwLock::new(` construction site is flagged. The wrappers feed the
/// contention profile (`/v1/prof`, `holo_prof_lock_wait_micros`), so a
/// raw lock is an invisible lock. `ProfMutex::new` tokenizes as its own
/// identifier and never matches; type positions (`Mutex<...>`) are not
/// construction and are ignored. Suppress with a written reason for a
/// lock that genuinely cannot be wrapped (e.g. const/static init before
/// the registry exists).
fn lock_instrumentation(m: &FileModel, cfg: &Config, out: &mut Vec<Finding>) {
    if !in_crates(&m.path, &cfg.lock_instr_crates) {
        return;
    }
    for i in 0..m.toks.len() {
        if m.toks[i].is_comment() || m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "Mutex" | "RwLock") {
            continue;
        }
        let is_new_call = after(m, i)
            .filter(|&a| m.toks[a].is_punct(':'))
            .and_then(|a| after(m, a))
            .filter(|&b| m.toks[b].is_punct(':'))
            .and_then(|b| after(m, b))
            .filter(|&c| m.toks[c].is_ident("new"))
            .and_then(|c| after(m, c))
            .is_some_and(|d| m.toks[d].is_punct('('));
        if is_new_call {
            out.push(Finding {
                rule: RULE_LOCK_INSTR,
                path: m.path.clone(),
                line: t.line,
                message: format!(
                    "raw `{0}::new` in an instrumented crate; construct a named \
                     `holo_prof::Prof{0}` so its contention shows up in /v1/prof",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}
