//! The workspace walker: resolve the member list from the root
//! `Cargo.toml` (including `crates/*`-style globs) and collect every
//! member's `src/**/*.rs`.
//!
//! Only `src/` trees are scanned: the invariants protect shipping
//! code, and integration tests / benches exercise panics and ambient
//! timing on purpose. In-file `#[cfg(test)]` regions are excluded by
//! the [`crate::model::FileModel`] overlay instead.

use crate::config::Config;
use std::io;
use std::path::{Path, PathBuf};

/// One file to lint: the workspace-relative label used in findings
/// (and matched against `lint.toml` paths), plus the real path.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/serve/src/http.rs`.
    pub label: String,
    /// Absolute (or root-joined) filesystem path.
    pub path: PathBuf,
}

/// Resolve all lintable sources under `root`. Member directories whose
/// label starts with one of `cfg.skip` (vendored crates, build
/// output) are excluded.
pub fn workspace_sources(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let mut dirs: Vec<String> = Vec::new();
    // The root package itself (the umbrella crate), when present.
    if manifest.lines().any(|l| l.trim() == "[package]") {
        dirs.push(String::new());
    }
    for member in parse_members(&manifest) {
        if let Some(prefix) = member.strip_suffix("/*") {
            let Ok(entries) = std::fs::read_dir(root.join(prefix)) else {
                continue;
            };
            let mut names: Vec<String> = entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().join("Cargo.toml").is_file())
                .filter_map(|e| e.file_name().into_string().ok())
                .map(|n| format!("{prefix}/{n}"))
                .collect();
            names.sort();
            dirs.extend(names);
        } else {
            dirs.push(member);
        }
    }
    let mut out = Vec::new();
    for dir in dirs {
        if cfg.skip.iter().any(|s| dir.starts_with(s.as_str())) {
            continue;
        }
        let src = if dir.is_empty() {
            root.join("src")
        } else {
            root.join(&dir).join("src")
        };
        let label_base = if dir.is_empty() {
            "src".to_string()
        } else {
            format!("{dir}/src")
        };
        collect_rs(&src, &label_base, &mut out)?;
    }
    out.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(out)
}

/// Extract the `members = [...]` array from `[workspace]` (the value
/// may span lines).
fn parse_members(manifest: &str) -> Vec<String> {
    let mut in_workspace = false;
    let mut collecting = false;
    let mut buf = String::new();
    for line in manifest.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_workspace = trimmed == "[workspace]";
            continue;
        }
        if collecting {
            buf.push_str(trimmed);
            if trimmed.contains(']') {
                break;
            }
            continue;
        }
        if in_workspace {
            if let Some(rest) = trimmed.strip_prefix("members") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    buf.push_str(value.trim());
                    if !value.contains(']') {
                        collecting = true;
                        continue;
                    }
                    break;
                }
            }
        }
    }
    // Pull out the quoted strings.
    let mut members = Vec::new();
    let mut rest = buf.as_str();
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            break;
        };
        members.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + len + 2..];
    }
    members
}

/// Recursively collect `*.rs` under `dir` (in sorted order).
fn collect_rs(dir: &Path, label_base: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if path.is_dir() {
            collect_rs(&path, &format!("{label_base}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                label: format!("{label_base}/{name}"),
                path,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_single_and_multi_line_arrays() {
        let single = "[workspace]\nmembers = [\"crates/*\", \"vendor/*\"]\n";
        assert_eq!(parse_members(single), vec!["crates/*", "vendor/*"]);
        let multi = "[workspace]\nmembers = [\n  \"a\",\n  \"b\",\n]\n[package]\nname = \"x\"\n";
        assert_eq!(parse_members(multi), vec!["a", "b"]);
    }

    #[test]
    fn members_outside_workspace_section_are_ignored() {
        let t = "[package]\nmembers = [\"nope\"]\n[workspace]\nmembers = [\"yes\"]\n";
        assert_eq!(parse_members(t), vec!["yes"]);
    }

    #[test]
    fn this_workspace_resolves_and_skips_vendor() {
        // The lint crate always runs from inside the workspace; walk
        // up from the manifest dir to the root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let cfg = Config::default();
        let files = workspace_sources(root, &cfg).unwrap();
        assert!(files.iter().any(|f| f.label == "crates/serve/src/http.rs"));
        assert!(files.iter().any(|f| f.label == "crates/lint/src/walker.rs"));
        assert!(files.iter().any(|f| f.label.starts_with("src/")));
        assert!(
            !files.iter().any(|f| f.label.starts_with("vendor/")),
            "vendored crates are never linted"
        );
    }
}
