//! `lint.toml` — the checked-in declaration of the workspace's
//! invariants, parsed with a small hand-rolled TOML subset reader
//! (sections, string/array-of-string values; same spirit as the other
//! hand-rolled parsers in this workspace).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A configuration error with the offending line.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The full lint configuration. Every rule is on by default; the
/// config only *scopes* rules (which crates/files/identifiers they
/// watch), it cannot turn them off — suppression is per-line in the
/// source, with a mandatory reason.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes (relative to the workspace root) never scanned.
    pub skip: Vec<String>,
    /// Crates (directory names under `crates/`) whose lock
    /// acquisitions are ordered.
    pub lock_order_crates: Vec<String>,
    /// The declared hierarchy, outermost first: a lock named by
    /// position `i` must never be acquired while one with position
    /// `> i` is held.
    pub lock_order: Vec<String>,
    /// Files (workspace-relative) where panicking constructs are
    /// forbidden.
    pub no_panic_paths: Vec<String>,
    /// Crates where raw `Mutex`/`RwLock` construction is forbidden in
    /// favor of the instrumented `holo_prof` wrappers.
    pub lock_instr_crates: Vec<String>,
    /// Crates whose counter updates must be saturating.
    pub counter_crates: Vec<String>,
    /// Files holding metrics state where even non-atomic `+=`/`-=`
    /// is flagged.
    pub counter_metrics_files: Vec<String>,
    /// Path prefixes where time-derived seeding is allowed (benches).
    pub seed_allow_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: vec!["vendor".into(), "target".into()],
            lock_order_crates: Vec::new(),
            lock_order: Vec::new(),
            no_panic_paths: Vec::new(),
            lock_instr_crates: Vec::new(),
            counter_crates: Vec::new(),
            counter_metrics_files: Vec::new(),
            seed_allow_paths: Vec::new(),
        }
    }
}

impl Config {
    /// Parse from TOML-subset text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let mut line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            // A `key = [` array may span lines; join until the `]`.
            while line.contains('[') && !line.starts_with('[') && !line.contains(']') {
                let Some((_, next)) = lines.next() else { break };
                line.push(' ');
                line.push_str(strip_comment(next).trim());
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                current = name.trim().to_string();
                sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value` or `[section]`, got `{line}`"),
                });
            };
            let values = parse_value(value.trim(), lineno)?;
            sections
                .entry(current.clone())
                .or_default()
                .insert(key.trim().to_string(), values);
        }

        let mut cfg = Config::default();
        let take = |sections: &BTreeMap<String, BTreeMap<String, Vec<String>>>,
                    section: &str,
                    key: &str| {
            sections
                .get(section)
                .and_then(|s| s.get(key))
                .cloned()
                .unwrap_or_default()
        };
        let top = take(&sections, "", "skip");
        if !top.is_empty() {
            cfg.skip = top;
        }
        cfg.lock_order_crates = take(&sections, "lock-order", "crates");
        cfg.lock_order = take(&sections, "lock-order", "order");
        cfg.no_panic_paths = take(&sections, "no-panic-paths", "paths");
        cfg.lock_instr_crates = take(&sections, "lock-instrumentation", "crates");
        cfg.counter_crates = take(&sections, "counter-discipline", "crates");
        cfg.counter_metrics_files = take(&sections, "counter-discipline", "metrics-files");
        cfg.seed_allow_paths = take(&sections, "seed-hygiene", "allow-paths");
        Ok(cfg)
    }

    /// Read and parse a config file.
    pub fn load(path: &Path) -> Result<Config, Box<dyn std::error::Error>> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Ok(Config::parse(&text)?)
    }

    /// Rank of a lock name in the declared hierarchy, if ordered.
    pub fn lock_rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }
}

/// Strip a `#`-to-end-of-line comment, respecting double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    if let Some(inner) = value.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(parse_string(part, line)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value, line)?])
}

/// Split an array body on commas (no nested arrays in this subset,
/// but commas inside quoted strings are respected).
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

/// Parse one double-quoted string.
fn parse_string(s: &str, line: usize) -> Result<String, ConfigError> {
    let inner = s
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a double-quoted string, got `{s}`"),
        })?;
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# workspace invariants
skip = ["vendor", "target"]

[lock-order]
crates = ["serve", "stream"]
order = ["refit_lock", "state", "log", "drift"]  # outermost first

[no-panic-paths]
paths = ["crates/serve/src/http.rs"]

[lock-instrumentation]
crates = ["serve", "stream"]

[counter-discipline]
crates = ["serve", "stream"]
metrics-files = ["crates/serve/src/metrics.rs"]

[seed-hygiene]
allow-paths = ["crates/bench"]
"#;

    #[test]
    fn sample_config_round_trips() {
        let cfg = Config::parse(SAMPLE).unwrap();
        assert_eq!(cfg.skip, vec!["vendor", "target"]);
        assert_eq!(cfg.lock_order, vec!["refit_lock", "state", "log", "drift"]);
        assert_eq!(cfg.lock_rank("state"), Some(1));
        assert_eq!(cfg.lock_rank("drift"), Some(3));
        assert_eq!(cfg.lock_rank("unrelated"), None);
        assert_eq!(cfg.no_panic_paths, vec!["crates/serve/src/http.rs"]);
        assert_eq!(cfg.lock_instr_crates, vec!["serve", "stream"]);
        assert_eq!(
            cfg.counter_metrics_files,
            vec!["crates/serve/src/metrics.rs"]
        );
        assert_eq!(cfg.seed_allow_paths, vec!["crates/bench"]);
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = Config::parse(r##"skip = ["a#b"]"##).unwrap();
        assert_eq!(cfg.skip, vec!["a#b"]);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = Config::parse("[x]\nnot a kv line").unwrap_err();
        assert_eq!(err.line, 2);
        let err = Config::parse("key = unquoted").unwrap_err();
        assert!(err.message.contains("double-quoted"));
    }

    #[test]
    fn multi_line_arrays_join() {
        let cfg = Config::parse(
            "[no-panic-paths]\npaths = [\n  \"a.rs\",  # hot\n  \"b.rs\",\n]\n[seed-hygiene]\nallow-paths = [\"c\"]",
        )
        .unwrap();
        assert_eq!(cfg.no_panic_paths, vec!["a.rs", "b.rs"]);
        assert_eq!(cfg.seed_allow_paths, vec!["c"]);
    }

    #[test]
    fn missing_sections_fall_back_to_defaults() {
        let cfg = Config::parse("").unwrap();
        assert_eq!(cfg.skip, vec!["vendor", "target"]);
        assert!(cfg.lock_order.is_empty());
    }
}
