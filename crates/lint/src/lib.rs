//! `holo-lint` — the workspace invariant checker.
//!
//! The serving stack's correctness rests on concurrency and
//! robustness invariants that used to live only in module docs and
//! CHANGES.md prose. This crate turns each of them into a
//! deny-by-default static-analysis rule over the workspace's own
//! sources: a hand-rolled, string/char/comment/raw-string-aware
//! tokenizer ([`lexer`]), a structural overlay that knows test
//! regions, suppressions and function spans ([`model`]), a workspace
//! walker driven by the root `Cargo.toml` members ([`walker`]), and
//! the rule engine itself ([`rules`]). No external dependencies, no
//! rustc internals — the linter builds and runs anywhere the
//! workspace does.
//!
//! # Rule catalog
//!
//! | Rule | Invariant | Where it came from |
//! |------|-----------|--------------------|
//! | `lock-order` | `.lock()/.read()/.write()` acquisitions must follow the declared `refit_lock -> state -> log -> drift` hierarchy (outermost first), per function, in `crates/serve` + `crates/stream`. | The hierarchy `holo_stream::live` documents and every deadlock-free interleaving depends on (streaming-ingest PR). |
//! | `no-panic-paths` | No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/postfix indexing in the request and ingest hot paths (`serve::{http,app,batch,registry}`, `stream::live`). Typed errors only. | The serving PR made panic-isolated 500s the *backstop*; this rule makes typed propagation the *design*. |
//! | `thread-entry-isolation` | Every detached `thread::spawn` / `Builder::spawn` closure must route through `catch_unwind` (directly, or via the single same-file function it delegates to). Scoped `thread::scope` spawns are exempt: their panics propagate deterministically to the joining caller. | The worker-pool hardening note from the serving PR ("panic isolation at every thread entry point"). |
//! | `counter-discipline` | Atomic metrics counters in `crates/serve` + `crates/stream` must never use wrapping `fetch_add`/`fetch_sub`; the idiom is `fetch_update` + `saturating_add` (`holo_serve::metrics::sat_add`). Declared metrics files also reject bare `+=`/`-=`. | The metrics module's "counters saturate" rule, now enforced beyond that one file. |
//! | `seed-hygiene` | No `SystemTime`, `thread_rng`, `from_entropy`, or nanosecond extraction (`.as_nanos()`/`.subsec_nanos()`) outside the bench allow-list — seeds are explicit so bitwise score parity holds. | Mechanizes the manual seed audit from the scenario-suite PR. |
//! | `suppression-missing-reason` | Every `lint:allow` must carry a written reason; a reasonless suppression suppresses nothing and is itself a finding. | The suppression mechanism's own integrity rule. |
//!
//! # Suppression
//!
//! A finding that is genuinely safe is allowed in-source, never in
//! config:
//!
//! ```text
//! // lint:allow(no-panic-paths): index is hash % stripes.len(); stripes is non-empty by construction
//! let stripe = &self.stripes[idx];
//! ```
//!
//! A standalone comment covers itself and the next line; a trailing
//! comment covers its own line. The reason after the `:` is
//! mandatory. Suppressed findings still appear in the JSON report, so
//! CI artifacts are an audit trail of every accepted exception.
//!
//! # Running
//!
//! ```text
//! cargo run -p holo-lint              # human report
//! cargo run -p holo-lint -- --check   # CI mode: exit 1 on any unsuppressed finding
//! cargo run -p holo-lint -- --json lint-findings.json
//! ```
//!
//! Scope: every workspace member's `src/` tree (vendored crates are
//! skipped via `lint.toml`), with `#[cfg(test)]` modules and
//! `#[test]` functions excluded token-by-token — tests may panic and
//! measure wall-clocks all they like.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod walker;

pub use config::Config;
pub use report::Report;
pub use rules::{lint_file, lint_file_filtered, Finding, RULES};

use std::path::Path;

/// Lint the whole workspace rooted at `root` with `cfg`.
pub fn lint_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let sources = walker::workspace_sources(root, cfg)?;
    let mut findings = Vec::new();
    let files_scanned = sources.len();
    for src in sources {
        let text = std::fs::read_to_string(&src.path)?;
        findings.extend(lint_file(&src.label, &text, cfg));
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned,
    })
}
