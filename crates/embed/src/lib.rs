//! # holo-embed
//!
//! FastText-style distributed representations, trained on corpora derived
//! from the input dataset.
//!
//! Appendix A.1 of the paper: "The embeddings are taken at a character,
//! cell and tuple level tokens, and each uses a FastText Embedding in 50
//! dimensions". FastText \[7, 32\] is skip-gram with negative sampling plus
//! hashed subword n-grams, which is exactly what this crate implements:
//!
//! * [`vocab::Vocab`] — token vocabulary with counts and a hashed
//!   subword-bucket space,
//! * [`skipgram`] — the SGNS trainer ([`skipgram::SkipGramConfig`],
//!   [`skipgram::Embedding`]), deterministic given a seed,
//! * [`corpus`] — corpus builders for the four views the paper uses:
//!   per-cell character sequences, per-cell word-token sequences,
//!   tuple-as-bag-of-words documents, and tuple documents over
//!   *non-tokenized* attribute values (for the neighbourhood model),
//! * [`nearest`] — top-1 cosine-distance queries for the neighbourhood
//!   representation.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod corpus;
pub mod nearest;
pub mod skipgram;
pub mod vocab;

pub use corpus::{char_corpus, token_corpus, tuple_bag_corpus, value_token_corpus};
pub use nearest::nearest_distance;
pub use skipgram::{Embedding, SkipGramConfig};
pub use vocab::Vocab;
