//! Top-1 nearest-neighbour distance for the neighbourhood representation.
//!
//! Appendix A.1: "we simply take the minimum distance to another
//! embedding in our corpus, and this distance is fed to the joint
//! representation". The intuition: an erroneous cell often has a nearby
//! *correct* twin somewhere in the dataset, so a small distance to some
//! other value is a useful signal.
//!
//! A full scan over all distinct values is `O(V·d)` per query; for large
//! vocabularies the candidate set is deterministically strided down to
//! [`MAX_CANDIDATES`], which preserves the distance distribution well
//! enough for a 1-dimensional feature (documented substitution; the
//! paper's prototype did the full scan in optimized C).

use crate::skipgram::{cosine, Embedding};

/// Cap on scanned candidates per query.
pub const MAX_CANDIDATES: usize = 2048;

/// Cosine *distance* (`1 − similarity`) from `token` to its nearest
/// other candidate token. Returns `1.0` (maximally far) when there are
/// no other candidates or the token has a zero vector.
pub fn nearest_distance(emb: &Embedding, token: &str, candidates: &[String]) -> f32 {
    let query = emb.vector(token);
    if query.iter().all(|&x| x == 0.0) {
        return 1.0;
    }
    let stride = (candidates.len() / MAX_CANDIDATES).max(1);
    let mut best = f32::NEG_INFINITY;
    let mut i = 0;
    while i < candidates.len() {
        let c = &candidates[i];
        i += stride;
        if c == token {
            continue;
        }
        let sim = cosine(&query, &emb.vector(c));
        if sim > best {
            best = sim;
        }
    }
    if best == f32::NEG_INFINITY {
        return 1.0;
    }
    (1.0 - best).clamp(0.0, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skipgram::SkipGramConfig;

    fn corpus() -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for _ in 0..40 {
            out.push(vec!["0:chicago".into(), "1:il".into()]);
            out.push(vec!["0:madison".into(), "1:wi".into()]);
        }
        out
    }

    fn emb() -> Embedding {
        Embedding::train(
            &corpus(),
            &SkipGramConfig {
                dim: 12,
                epochs: 6,
                buckets: 128,
                window: None,
                ..Default::default()
            },
        )
    }

    #[test]
    fn distance_to_self_excluded() {
        let e = emb();
        let cands = vec!["0:chicago".to_owned()];
        // Only candidate is the token itself: maximally far.
        assert_eq!(nearest_distance(&e, "0:chicago", &cands), 1.0);
    }

    #[test]
    fn near_twin_has_smaller_distance_than_stranger() {
        let e = emb();
        let cands = vec!["0:chicago".to_owned(), "0:madison".to_owned()];
        // A typo of chicago is closer to the candidate set than a random
        // unrelated string (subword sharing).
        let d_typo = nearest_distance(&e, "0:chicagq", &cands);
        let d_stranger = nearest_distance(&e, "0:zzzzqqq", &cands);
        assert!(d_typo < d_stranger, "{d_typo} vs {d_stranger}");
    }

    #[test]
    fn empty_candidates() {
        let e = emb();
        assert_eq!(nearest_distance(&e, "0:chicago", &[]), 1.0);
    }

    #[test]
    fn distance_in_valid_range() {
        let e = emb();
        let cands: Vec<String> = ["0:chicago", "0:madison", "1:il", "1:wi"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for c in &cands {
            let d = nearest_distance(&e, c, &cands);
            assert!((0.0..=2.0).contains(&d), "distance out of range: {d}");
        }
    }
}
