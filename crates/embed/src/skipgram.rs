//! Skip-gram with negative sampling (SGNS) over hashed subwords.
//!
//! The trainer follows FastText: the *input* representation of a token is
//! the average of its word vector and its subword-bucket vectors, so
//! out-of-vocabulary strings (e.g. a typo'd cell value, exactly what
//! error detection cares about) still embed near their clean neighbours.

use crate::vocab::Vocab;
use holo_data::binio;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};

/// Configuration for [`Embedding::train`].
#[derive(Debug, Clone)]
pub struct SkipGramConfig {
    /// Embedding dimension (the paper uses 50).
    pub dim: usize,
    /// Full passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to 5% across training.
    pub lr: f32,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Context window; `None` means the whole sentence (the paper's
    /// bag-of-words treatment of tuples).
    pub window: Option<usize>,
    /// Minimum token count for vocabulary inclusion.
    pub min_count: u64,
    /// Subword n-gram order range (inclusive).
    pub subword_range: (usize, usize),
    /// Subword hash buckets (0 disables subwords).
    pub buckets: usize,
    /// RNG seed — training is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            dim: 50,
            epochs: 5,
            lr: 0.05,
            negative: 5,
            window: Some(5),
            min_count: 1,
            subword_range: (3, 5),
            buckets: 1 << 15,
            seed: 17,
        }
    }
}

/// A trained embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    vocab: Vocab,
    dim: usize,
    /// `(V + buckets) × dim`: word vectors then bucket vectors.
    input: Vec<f32>,
    /// `V × dim`: context (output) vectors.
    output: Vec<f32>,
}

impl Embedding {
    /// Train SGNS on the given sentences.
    pub fn train(sentences: &[Vec<String>], cfg: &SkipGramConfig) -> Self {
        let vocab = Vocab::build(sentences, cfg.min_count, cfg.subword_range, cfg.buckets);
        let v = vocab.len();
        let dim = cfg.dim;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut input = vec![0.0f32; (v + cfg.buckets) * dim];
        for x in &mut input {
            *x = rng.random_range(-0.5..0.5f32) / dim as f32;
        }
        let output = vec![0.0f32; v * dim];
        let mut emb = Embedding {
            vocab,
            dim,
            input,
            output,
        };
        if v == 0 {
            return emb;
        }

        let resolved = emb.resolve(sentences);
        emb.sgns_train(&resolved, cfg, cfg.epochs, &mut rng);
        emb
    }

    /// Incrementally update a trained embedding with delta sentences —
    /// the refit-time path that keeps representations from going stale
    /// between full retrains without paying for one.
    ///
    /// Three steps, all deterministic given the table state and delta:
    /// 1. **Vocabulary extension** ([`Vocab::extend`]): existing ids are
    ///    stable, new tokens append after them; existing counts absorb
    ///    the delta so negative sampling tracks the grown corpus.
    /// 2. **Table growth**: new word rows are seeded per *token* (seed
    ///    mixed with the token's hash, not its arrival order), new
    ///    output rows start at zero — exactly how [`Embedding::train`]
    ///    initializes, so a token's starting point is independent of
    ///    when it arrived.
    /// 3. **Bounded refresh pass**: `epochs` SGNS epochs over *only* the
    ///    delta sentences (shared subword buckets pull existing
    ///    neighbours along), instead of a full-corpus retrain.
    ///
    /// Returns `true` when anything changed (`false` for an empty delta
    /// or `epochs == 0`). `cfg` must carry the same `dim` the table was
    /// trained with.
    pub fn refresh(
        &mut self,
        sentences: &[Vec<String>],
        cfg: &SkipGramConfig,
        epochs: usize,
    ) -> bool {
        assert_eq!(cfg.dim, self.dim, "refresh dim disagrees with table");
        if epochs == 0 || sentences.is_empty() {
            return false;
        }
        let dim = self.dim;
        let old_v = self.vocab.len();
        let n_new = self.vocab.extend(sentences, cfg.min_count);
        let v = self.vocab.len();
        if n_new > 0 {
            // Grow the input table in its words-then-buckets layout:
            // old word rows keep their values, new word rows are seeded
            // per token, bucket rows shift up unchanged.
            let buckets = self.vocab.buckets;
            let mut input = Vec::with_capacity((v + buckets) * dim);
            input.extend_from_slice(&self.input[..old_v * dim]);
            for id in old_v..v {
                let token_seed = crate::vocab::fnv1a(self.vocab.token(id).as_bytes());
                let mut trng = StdRng::seed_from_u64(cfg.seed ^ token_seed);
                for _ in 0..dim {
                    input.push(trng.random_range(-0.5..0.5f32) / dim as f32);
                }
            }
            input.extend_from_slice(&self.input[old_v * dim..]);
            self.input = input;
            self.output.resize(v * dim, 0.0);
        }
        if v == 0 {
            return false;
        }
        let resolved = self.resolve(sentences);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5EED_4EF1));
        self.sgns_train(&resolved, cfg, epochs, &mut rng);
        true
    }

    /// Pre-resolve sentences to (word id, subword buckets) pairs,
    /// dropping out-of-vocabulary tokens.
    fn resolve(&self, sentences: &[Vec<String>]) -> Vec<Vec<(usize, Vec<usize>)>> {
        sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| {
                        self.vocab
                            .id(t)
                            .map(|id| (id, self.vocab.subword_buckets(t)))
                    })
                    .collect()
            })
            .collect()
    }

    /// The SGNS training loop over pre-resolved sentences: linear lr
    /// decay across `epochs` passes, shared verbatim by full training
    /// and incremental refresh.
    fn sgns_train(
        &mut self,
        resolved: &[Vec<(usize, Vec<usize>)>],
        cfg: &SkipGramConfig,
        epochs: usize,
        rng: &mut StdRng,
    ) {
        let v = self.vocab.len();
        let dim = self.dim;
        if v == 0 {
            return;
        }
        let neg_table = self.vocab.negative_table();
        let total_mass = *neg_table.last().expect("non-empty vocab");

        let total_pairs: usize = resolved
            .iter()
            .map(|s| {
                let n = s.len();
                match cfg.window {
                    None => n.saturating_sub(1) * n,
                    Some(w) => n * (2 * w).min(n.saturating_sub(1)),
                }
            })
            .sum::<usize>()
            .max(1)
            * epochs;

        let mut seen_pairs = 0usize;
        let mut center_vec = vec![0.0f32; dim];
        let mut grad_in = vec![0.0f32; dim];

        for _ in 0..epochs {
            for sent in resolved {
                let n = sent.len();
                for i in 0..n {
                    let (center, buckets) = &sent[i];
                    let (lo, hi) = match cfg.window {
                        None => (0, n),
                        Some(w) => (i.saturating_sub(w), (i + w + 1).min(n)),
                    };
                    // The window is index arithmetic around the center;
                    // an index loop is the clear spelling.
                    #[allow(clippy::needless_range_loop)]
                    for j in lo..hi {
                        if j == i {
                            continue;
                        }
                        let ctx = sent[j].0;
                        seen_pairs += 1;
                        let progress = seen_pairs as f32 / total_pairs as f32;
                        let lr = cfg.lr * (1.0 - 0.95 * progress.min(1.0));

                        // Compose the center's input vector.
                        self.compose_input(*center, buckets, &mut center_vec);
                        grad_in.iter_mut().for_each(|g| *g = 0.0);

                        // Positive pair + negative samples.
                        self.sgns_pair(ctx, true, &center_vec, &mut grad_in, lr);
                        for _ in 0..cfg.negative {
                            let r: f64 = rng.random_range(0.0..total_mass);
                            let neg = neg_table.partition_point(|&c| c < r).min(v - 1);
                            if neg == ctx {
                                continue;
                            }
                            self.sgns_pair(neg, false, &center_vec, &mut grad_in, lr);
                        }

                        // Distribute the input gradient over word + buckets.
                        let parts = 1 + buckets.len();
                        let scale = 1.0 / parts as f32;
                        let w = &mut self.input[center * dim..(center + 1) * dim];
                        for (x, g) in w.iter_mut().zip(&grad_in) {
                            *x -= g * scale;
                        }
                        for &b in buckets {
                            let off = (v + b) * dim;
                            let bv = &mut self.input[off..off + dim];
                            for (x, g) in bv.iter_mut().zip(&grad_in) {
                                *x -= g * scale;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Average of the word vector (if in vocabulary) and subword-bucket
    /// vectors into `out`.
    fn compose_input(&self, word: usize, buckets: &[usize], out: &mut [f32]) {
        let dim = self.dim;
        let v = self.vocab.len();
        out.copy_from_slice(&self.input[word * dim..(word + 1) * dim]);
        for &b in buckets {
            let off = (v + b) * dim;
            for (o, x) in out.iter_mut().zip(&self.input[off..off + dim]) {
                *o += x;
            }
        }
        let scale = 1.0 / (1 + buckets.len()) as f32;
        for o in out.iter_mut() {
            *o *= scale;
        }
    }

    /// One (center, context) update; accumulates dL/d(center) in grad_in
    /// and applies the output-vector update immediately.
    fn sgns_pair(
        &mut self,
        ctx: usize,
        positive: bool,
        center: &[f32],
        grad_in: &mut [f32],
        lr: f32,
    ) {
        let dim = self.dim;
        let out = &mut self.output[ctx * dim..(ctx + 1) * dim];
        let mut dot = 0.0f32;
        for (c, o) in center.iter().zip(out.iter()) {
            dot += c * o;
        }
        let pred = 1.0 / (1.0 + (-dot).exp());
        let err = pred - f32::from(positive); // dL/d(dot)
        for i in 0..dim {
            grad_in[i] += err * out[i] * lr;
            out[i] -= err * center[i] * lr;
        }
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The composed input vector for any token (subwords make
    /// out-of-vocabulary strings embeddable). Returns zeros only when the
    /// token is OOV *and* subwords are disabled or produce no buckets.
    pub fn vector(&self, token: &str) -> Vec<f32> {
        let dim = self.dim;
        let v = self.vocab.len();
        let mut out = vec![0.0f32; dim];
        let mut parts = 0usize;
        if let Some(id) = self.vocab.id(token) {
            out.copy_from_slice(&self.input[id * dim..(id + 1) * dim]);
            parts += 1;
        }
        for b in self.vocab.subword_buckets(token) {
            let off = (v + b) * dim;
            for (o, x) in out.iter_mut().zip(&self.input[off..off + dim]) {
                *o += x;
            }
            parts += 1;
        }
        if parts > 1 {
            let scale = 1.0 / parts as f32;
            for o in &mut out {
                *o *= scale;
            }
        }
        out
    }

    /// Mean of token vectors for a pre-tokenized text; zeros for an empty
    /// token list.
    pub fn embed_tokens(&self, tokens: &[String]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        if tokens.is_empty() {
            return out;
        }
        for t in tokens {
            for (o, x) in out.iter_mut().zip(self.vector(t)) {
                *o += x;
            }
        }
        let scale = 1.0 / tokens.len() as f32;
        for o in &mut out {
            *o *= scale;
        }
        out
    }

    /// Cosine similarity between two tokens' composed vectors.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.vector(a), &self.vector(b))
    }

    /// Serialize the trained table (vectors are written bit-exactly, so
    /// a reloaded embedding reproduces every query identically).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        self.vocab.write_to(w)?;
        binio::write_usize(w, self.dim)?;
        binio::write_f32_slice(w, &self.input)?;
        binio::write_f32_slice(w, &self.output)
    }

    /// Deserialize an embedding written by [`Embedding::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Embedding> {
        let vocab = Vocab::read_from(r)?;
        let dim = binio::read_usize(r)?;
        let input = binio::read_f32_slice(r)?;
        let output = binio::read_f32_slice(r)?;
        if input.len() != (vocab.len() + vocab.buckets) * dim || output.len() != vocab.len() * dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "embedding table sizes disagree with vocabulary",
            ));
        }
        Ok(Embedding {
            vocab,
            dim,
            input,
            output,
        })
    }
}

/// Cosine similarity; 0 when either vector is all-zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A corpus with two co-occurrence clusters: city names with "il",
    /// fruit names with "sweet".
    fn clustered_corpus() -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for _ in 0..60 {
            out.push(vec!["chicago".into(), "il".into(), "urban".into()]);
            out.push(vec!["springfield".into(), "il".into(), "urban".into()]);
            out.push(vec!["apple".into(), "sweet".into(), "fruit".into()]);
            out.push(vec!["banana".into(), "sweet".into(), "fruit".into()]);
        }
        out
    }

    fn small_cfg() -> SkipGramConfig {
        SkipGramConfig {
            dim: 16,
            epochs: 8,
            lr: 0.08,
            negative: 4,
            buckets: 256,
            ..SkipGramConfig::default()
        }
    }

    #[test]
    fn cooccurring_tokens_are_closer() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let intra = emb.similarity("chicago", "springfield");
        let inter = emb.similarity("chicago", "banana");
        assert!(
            intra > inter,
            "expected cluster structure: intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn oov_token_embeds_via_subwords() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let typo = emb.vector("chicagq"); // OOV
        assert!(typo.iter().any(|&x| x != 0.0));
        // The typo shares subwords with "chicago", so it should be more
        // similar to chicago than to an unrelated word.
        let sim_city = cosine(&typo, &emb.vector("chicago"));
        let sim_fruit = cosine(&typo, &emb.vector("banana"));
        assert!(sim_city > sim_fruit, "{sim_city} vs {sim_fruit}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Embedding::train(&clustered_corpus(), &small_cfg());
        let b = Embedding::train(&clustered_corpus(), &small_cfg());
        assert_eq!(a.vector("chicago"), b.vector("chicago"));
    }

    #[test]
    fn embed_tokens_is_mean() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let a = emb.vector("chicago");
        let b = emb.vector("il");
        let mean = emb.embed_tokens(&["chicago".into(), "il".into()]);
        for i in 0..emb.dim() {
            assert!((mean[i] - (a[i] + b[i]) / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_tokens_embed_to_zero() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        assert!(emb.embed_tokens(&[]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_corpus_is_safe() {
        let emb = Embedding::train(&[], &small_cfg());
        assert_eq!(emb.vocab().len(), 0);
        // OOV with subwords still returns a (bucket-initialized) vector.
        assert_eq!(emb.vector("x").len(), 16);
    }

    #[test]
    fn whole_sentence_window() {
        let cfg = SkipGramConfig {
            window: None,
            ..small_cfg()
        };
        let emb = Embedding::train(&clustered_corpus(), &cfg);
        assert!(emb.similarity("chicago", "il") > emb.similarity("chicago", "sweet"));
    }

    #[test]
    fn binary_roundtrip_reproduces_vectors_exactly() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let mut buf = Vec::new();
        emb.write_to(&mut buf).unwrap();
        let back = Embedding::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.dim(), emb.dim());
        assert_eq!(back.vocab().len(), emb.vocab().len());
        for token in ["chicago", "banana", "chicagq" /* OOV via subwords */] {
            let (a, b) = (emb.vector(token), back.vector(token));
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "vector for {token} not bit-identical"
            );
        }
    }

    /// Delta sentences introducing a new city token.
    fn delta_corpus() -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for _ in 0..40 {
            out.push(vec!["detroit".into(), "il".into(), "urban".into()]);
        }
        out
    }

    #[test]
    fn refresh_is_deterministic_and_preserves_structure() {
        let run = || {
            let mut emb = Embedding::train(&clustered_corpus(), &small_cfg());
            assert!(emb.refresh(&delta_corpus(), &small_cfg(), 4));
            emb
        };
        let (a, b) = (run(), run());
        for token in ["chicago", "detroit", "banana"] {
            assert_eq!(
                a.vector(token)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                b.vector(token)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "refresh not deterministic for {token}"
            );
        }
    }

    #[test]
    fn refresh_noop_on_empty_delta_or_zero_epochs() {
        let base = Embedding::train(&clustered_corpus(), &small_cfg());
        let mut emb = base.clone();
        assert!(!emb.refresh(&[], &small_cfg(), 4));
        assert!(!emb.refresh(&delta_corpus(), &small_cfg(), 0));
        assert_eq!(emb.vocab().len(), base.vocab().len());
        assert_eq!(emb.vector("chicago"), base.vector("chicago"));
    }

    /// Rebuild-parity: a refreshed table must agree with a full retrain
    /// over base+delta on the *structure* the features consume — the
    /// new token clusters with its co-occurrence neighbours, away from
    /// the other cluster, and existing cluster structure survives.
    #[test]
    fn refresh_matches_full_rebuild_cluster_structure() {
        let mut full_corpus = clustered_corpus();
        full_corpus.extend(delta_corpus());
        let rebuilt = Embedding::train(&full_corpus, &small_cfg());

        let mut refreshed = Embedding::train(&clustered_corpus(), &small_cfg());
        refreshed.refresh(&delta_corpus(), &small_cfg(), 8);

        // Same vocabulary (as a set) once the delta is absorbed.
        let mut a: Vec<&String> = rebuilt.vocab().tokens().iter().collect();
        let mut b: Vec<&String> = refreshed.vocab().tokens().iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "vocabulary sets diverged");

        // Both place the new token inside the city cluster.
        for emb in [&rebuilt, &refreshed] {
            let intra = emb.similarity("detroit", "chicago");
            let inter = emb.similarity("detroit", "banana");
            assert!(
                intra > inter,
                "detroit should join the city cluster: intra {intra} vs inter {inter}"
            );
        }
        // And the pre-existing cluster structure survives the refresh.
        assert!(
            refreshed.similarity("chicago", "springfield")
                > refreshed.similarity("chicago", "banana")
        );
    }

    #[test]
    fn refresh_new_token_init_is_arrival_order_independent() {
        // The same new token must start from the same seeded vector
        // whether it arrives alone or alongside other new tokens.
        let mut a = Embedding::train(&clustered_corpus(), &small_cfg());
        a.refresh(&[vec!["detroit".into()]], &small_cfg(), 1);
        let mut b = Embedding::train(&clustered_corpus(), &small_cfg());
        b.refresh(
            &[vec!["aardvark".into()], vec!["detroit".into()]],
            &small_cfg(),
            1,
        );
        // Ids differ (append order) but single-token sentences generate
        // no training pairs, so both vectors are pure seeded inits.
        let va = a.vector("detroit");
        let vb = b.vector("detroit");
        assert_eq!(
            va.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            vb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn refresh_roundtrips_through_serialization() {
        let mut emb = Embedding::train(&clustered_corpus(), &small_cfg());
        emb.refresh(&delta_corpus(), &small_cfg(), 4);
        let mut buf = Vec::new();
        emb.write_to(&mut buf).unwrap();
        let back = Embedding::read_from(&mut std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.vocab().len(), emb.vocab().len());
        assert_eq!(
            back.vector("detroit")
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            emb.vector("detroit")
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "refresh dim")]
    fn refresh_rejects_dim_mismatch() {
        let mut emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let wrong = SkipGramConfig {
            dim: 8,
            ..small_cfg()
        };
        emb.refresh(&delta_corpus(), &wrong, 1);
    }

    #[test]
    fn read_rejects_inconsistent_tables() {
        let emb = Embedding::train(&clustered_corpus(), &small_cfg());
        let mut buf = Vec::new();
        emb.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 8); // drop part of the output table
        assert!(Embedding::read_from(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }
}
