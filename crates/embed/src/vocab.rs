//! Token vocabulary with FastText-style hashed subword n-grams.

use holo_data::binio;
use std::collections::HashMap;
use std::io::{self, Read, Write};

/// FNV-1a, the classic cheap string hash FastText also relies on.
#[inline]
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A vocabulary over tokens, with counts and subword-bucket hashing.
#[derive(Debug, Clone)]
pub struct Vocab {
    ids: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<u64>,
    /// Subword n-gram order range (inclusive), e.g. `(3, 5)`.
    pub subword_range: (usize, usize),
    /// Number of hash buckets for subword vectors.
    pub buckets: usize,
}

impl Vocab {
    /// Build from sentences, keeping tokens with `count >= min_count`.
    pub fn build(
        sentences: &[Vec<String>],
        min_count: u64,
        subword_range: (usize, usize),
        buckets: usize,
    ) -> Self {
        assert!(subword_range.0 >= 1 && subword_range.0 <= subword_range.1);
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for s in sentences {
            for t in s {
                *freq.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut pairs: Vec<(&str, u64)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        // Deterministic id assignment: by descending count, then token.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let mut ids = HashMap::with_capacity(pairs.len());
        let mut tokens = Vec::with_capacity(pairs.len());
        let mut counts = Vec::with_capacity(pairs.len());
        for (t, c) in pairs {
            ids.insert(t.to_owned(), tokens.len());
            tokens.push(t.to_owned());
            counts.push(c);
        }
        Vocab {
            ids,
            tokens,
            counts,
            subword_range,
            buckets,
        }
    }

    /// Extend the vocabulary in place with tokens from delta sentences:
    /// existing tokens get their counts bumped (keeping the negative-
    /// sampling distribution honest), genuinely new tokens with
    /// `count >= min_count` are appended *after* all existing ids in the
    /// same deterministic order [`Vocab::build`] uses (descending count,
    /// then token). Existing ids never move, so embedding tables indexed
    /// by id stay valid — the invariant incremental refresh relies on.
    /// Returns the number of new tokens added.
    pub fn extend(&mut self, sentences: &[Vec<String>], min_count: u64) -> usize {
        let mut freq: HashMap<&str, u64> = HashMap::new();
        for s in sentences {
            for t in s {
                *freq.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut fresh: Vec<(&str, u64)> = Vec::new();
        for (t, c) in freq {
            match self.ids.get(t) {
                Some(&id) => self.counts[id] += c,
                None if c >= min_count => fresh.push((t, c)),
                None => {}
            }
        }
        fresh.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let n_new = fresh.len();
        for (t, c) in fresh {
            self.ids.insert(t.to_owned(), self.tokens.len());
            self.tokens.push(t.to_owned());
            self.counts.push(c);
        }
        n_new
    }

    /// Vocabulary size (distinct retained tokens).
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when the vocabulary is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Token id, if in vocabulary.
    #[inline]
    pub fn id(&self, token: &str) -> Option<usize> {
        self.ids.get(token).copied()
    }

    /// Token string for an id.
    #[inline]
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Occurrence count for an id.
    #[inline]
    pub fn count(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The hashed subword-bucket indices of a token (with FastText's
    /// `<` / `>` boundary markers). Buckets are offsets into a separate
    /// bucket table, so ids here are in `0..buckets`.
    pub fn subword_buckets(&self, token: &str) -> Vec<usize> {
        if self.buckets == 0 {
            return Vec::new();
        }
        let padded: Vec<char> = format!("<{token}>").chars().collect();
        let (lo, hi) = self.subword_range;
        let mut out = Vec::new();
        for n in lo..=hi {
            if padded.len() < n {
                break;
            }
            for w in padded.windows(n) {
                let g: String = w.iter().collect();
                out.push((fnv1a(g.as_bytes()) % self.buckets as u64) as usize);
            }
        }
        out
    }

    /// Serialize the vocabulary: tokens and counts in id order plus the
    /// subword configuration (the id map rebuilds on read).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        binio::write_usize(w, self.tokens.len())?;
        for (t, &c) in self.tokens.iter().zip(&self.counts) {
            binio::write_str(w, t)?;
            binio::write_u64(w, c)?;
        }
        binio::write_usize(w, self.subword_range.0)?;
        binio::write_usize(w, self.subword_range.1)?;
        binio::write_usize(w, self.buckets)
    }

    /// Deserialize a vocabulary written by [`Vocab::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Vocab> {
        let n = binio::read_usize(r)?;
        let mut ids = HashMap::with_capacity(binio::bounded_cap(n, 48));
        let mut tokens = Vec::with_capacity(binio::bounded_cap(n, 24));
        let mut counts = Vec::with_capacity(binio::bounded_cap(n, 8));
        for _ in 0..n {
            let t = binio::read_str(r)?;
            let c = binio::read_u64(r)?;
            ids.insert(t.clone(), tokens.len());
            tokens.push(t);
            counts.push(c);
        }
        let subword_range = (binio::read_usize(r)?, binio::read_usize(r)?);
        let buckets = binio::read_usize(r)?;
        if subword_range.0 < 1 || subword_range.0 > subword_range.1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad subword range",
            ));
        }
        Ok(Vocab {
            ids,
            tokens,
            counts,
            subword_range,
            buckets,
        })
    }

    /// The unigram^(3/4) negative-sampling table as a cumulative
    /// distribution (for binary-search sampling).
    pub fn negative_table(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.counts.len());
        let mut acc = 0.0f64;
        for &c in &self.counts {
            acc += (c as f64).powf(0.75);
            cum.push(acc);
        }
        cum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentences() -> Vec<Vec<String>> {
        vec![
            vec!["chicago".into(), "il".into()],
            vec!["chicago".into(), "wi".into()],
            vec!["madison".into(), "wi".into()],
        ]
    }

    #[test]
    fn build_counts_and_orders() {
        let v = Vocab::build(&sentences(), 1, (3, 5), 100);
        assert_eq!(v.len(), 4);
        // chicago and wi both occur twice; count-desc then lexicographic.
        assert_eq!(v.token(0), "chicago");
        assert_eq!(v.token(1), "wi");
        assert_eq!(v.count(0), 2);
        assert_eq!(v.id("madison"), Some(3));
        assert_eq!(v.id("nowhere"), None);
    }

    #[test]
    fn min_count_filters() {
        let v = Vocab::build(&sentences(), 2, (3, 5), 100);
        assert_eq!(v.len(), 2); // chicago, wi
    }

    #[test]
    fn subword_buckets_in_range() {
        let v = Vocab::build(&sentences(), 1, (3, 5), 64);
        let b = v.subword_buckets("chicago");
        assert!(!b.is_empty());
        assert!(b.iter().all(|&i| i < 64));
    }

    #[test]
    fn subword_buckets_deterministic_and_shared() {
        let v = Vocab::build(&sentences(), 1, (3, 3), 64);
        // "chicago" and "chicagx" share the "<ch", "chi", ... prefixes.
        let a = v.subword_buckets("chicago");
        let b = v.subword_buckets("chicagx");
        let shared = a.iter().filter(|x| b.contains(x)).count();
        assert!(shared >= 3, "expected shared prefix buckets, got {shared}");
        assert_eq!(a, v.subword_buckets("chicago"));
    }

    #[test]
    fn short_token_still_has_buckets() {
        let v = Vocab::build(&sentences(), 1, (3, 5), 64);
        // "<a>" has exactly one 3-gram.
        assert_eq!(v.subword_buckets("a").len(), 1);
    }

    #[test]
    fn zero_buckets_disables_subwords() {
        let v = Vocab::build(&sentences(), 1, (3, 5), 0);
        assert!(v.subword_buckets("chicago").is_empty());
    }

    #[test]
    fn extend_keeps_existing_ids_and_appends_deterministically() {
        let mut v = Vocab::build(&sentences(), 1, (3, 5), 100);
        let chicago = v.id("chicago").unwrap();
        let wi = v.id("wi").unwrap();
        let delta: Vec<Vec<String>> = vec![
            vec!["detroit".into(), "mi".into(), "chicago".into()],
            vec!["detroit".into(), "mi".into()],
            vec!["ann-arbor".into(), "mi".into()],
        ];
        let added = v.extend(&delta, 1);
        assert_eq!(added, 3); // detroit, mi, ann-arbor
                              // Existing ids are stable; existing counts absorbed the delta.
        assert_eq!(v.id("chicago"), Some(chicago));
        assert_eq!(v.id("wi"), Some(wi));
        assert_eq!(v.count(chicago), 3);
        // New ids appended after all old ones, count-desc then lex.
        assert_eq!(v.id("mi"), Some(4));
        assert_eq!(v.id("detroit"), Some(5));
        assert_eq!(v.id("ann-arbor"), Some(6));
    }

    #[test]
    fn extend_respects_min_count() {
        let mut v = Vocab::build(&sentences(), 1, (3, 5), 100);
        let n = v.len();
        let delta: Vec<Vec<String>> = vec![vec!["rare".into(), "common".into(), "common".into()]];
        assert_eq!(v.extend(&delta, 2), 1);
        assert_eq!(v.id("common"), Some(n));
        assert_eq!(v.id("rare"), None);
    }

    #[test]
    fn negative_table_is_monotone() {
        let v = Vocab::build(&sentences(), 1, (3, 5), 10);
        let t = v.negative_table();
        assert_eq!(t.len(), v.len());
        for w in t.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
