//! Corpus builders: the four dataset views the paper embeds.
//!
//! Appendix A.1: "embeddings are taken at a character, cell and tuple
//! level tokens"; the neighbourhood model additionally uses "a FastText
//! tuple embedding over the non-tokenized attribute values" where "each
//! tuple in D is considered to be a document" treated as a bag of words.

use holo_data::Dataset;
use holo_text::{char_tokens, word_tokens};

/// Character-level corpus: one sentence per cell, tokens are characters.
/// Powers the character sequence model.
pub fn char_corpus(d: &Dataset) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(d.n_cells());
    for t in 0..d.n_tuples() {
        for a in 0..d.n_attrs() {
            let toks = char_tokens(d.value(t, a));
            if !toks.is_empty() {
                out.push(toks);
            }
        }
    }
    out
}

/// Word-token corpus: one sentence per cell, tokens are in-cell words.
/// Powers the token sequence model.
pub fn token_corpus(d: &Dataset) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(d.n_cells());
    for t in 0..d.n_tuples() {
        for a in 0..d.n_attrs() {
            let toks = word_tokens(d.value(t, a));
            if !toks.is_empty() {
                out.push(toks);
            }
        }
    }
    out
}

/// Tuple-as-document corpus: one sentence per tuple, tokens are the word
/// tokens of every cell. Trained with a whole-sentence window so the
/// order of attributes does not matter (the paper's bag-of-words
/// treatment). Powers the tuple representation.
pub fn tuple_bag_corpus(d: &Dataset) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(d.n_tuples());
    for t in 0..d.n_tuples() {
        let mut sent = Vec::new();
        for a in 0..d.n_attrs() {
            sent.extend(word_tokens(d.value(t, a)));
        }
        if !sent.is_empty() {
            out.push(sent);
        }
    }
    out
}

/// Tuple documents over *non-tokenized* attribute values: each whole cell
/// value is one token. Powers the neighbourhood representation, where the
/// question is "is there some similar whole value elsewhere in D?".
/// Values are prefixed with their attribute index (`3:value`) so equal
/// strings in different columns stay distinct tokens.
pub fn value_token_corpus(d: &Dataset) -> Vec<Vec<String>> {
    let mut out = Vec::with_capacity(d.n_tuples());
    for t in 0..d.n_tuples() {
        let mut sent = Vec::with_capacity(d.n_attrs());
        for a in 0..d.n_attrs() {
            sent.push(value_token(a, d.value(t, a)));
        }
        out.push(sent);
    }
    out
}

/// The namespaced token for `(attribute, value)` in the value-token view.
pub fn value_token(attr: usize, value: &str) -> String {
    format!("{attr}:{value}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_data::{DatasetBuilder, Schema};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new(Schema::new(["City", "State"]));
        b.push_row(&["EVP Coffee", "IL"]);
        b.push_row(&["", "WI"]); // empty cell
        b.build()
    }

    #[test]
    fn char_corpus_one_sentence_per_nonempty_cell() {
        let c = char_corpus(&toy());
        assert_eq!(c.len(), 3); // empty cell skipped
        assert_eq!(c[0].len(), "EVP Coffee".chars().count());
    }

    #[test]
    fn token_corpus_tokenizes_cells() {
        let c = token_corpus(&toy());
        assert_eq!(c[0], vec!["evp", "coffee"]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn tuple_bag_merges_attributes() {
        let c = tuple_bag_corpus(&toy());
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], vec!["evp", "coffee", "il"]);
        assert_eq!(c[1], vec!["wi"]);
    }

    #[test]
    fn value_tokens_are_namespaced() {
        let c = value_token_corpus(&toy());
        assert_eq!(c[0], vec!["0:EVP Coffee", "1:IL"]);
        assert_eq!(c[1], vec!["0:", "1:WI"]);
        assert_eq!(value_token(1, "IL"), "1:IL");
    }

    #[test]
    fn empty_dataset_gives_empty_corpora() {
        let d = DatasetBuilder::new(Schema::new(["A"])).build();
        assert!(char_corpus(&d).is_empty());
        assert!(token_corpus(&d).is_empty());
        assert!(tuple_bag_corpus(&d).is_empty());
        assert!(value_token_corpus(&d).is_empty());
    }
}
