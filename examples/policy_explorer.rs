//! Explore the noisy channel: learn transformations and a policy from a
//! handful of error examples, inspect the conditional distribution for
//! new values, and generate synthetic errors — the paper's §5 machinery
//! in isolation (and the Figure 8 view of what it learns).
//!
//! ```text
//! cargo run --release --example policy_explorer
//! ```

use holodetect_repro::channel::{augment, learn_transformations, AugmentConfig, Policy};

fn main() {
    // A few (clean, dirty) pairs from an x-typo error process plus one
    // categorical swap — the kind of seed set a 5% training split yields.
    let examples = [
        ("scip-inf-4", "scip-inf-x4"),
        ("surgical infection", "surgxical infection"),
        ("60612", "6061x2"),
        ("alabama", "alaxbama"),
        ("Female", "Male"),
    ];

    println!("Algorithm 1 — learned transformation lists:\n");
    let mut lists = Vec::new();
    for (clean, dirty) in examples {
        let list = learn_transformations(clean, dirty);
        println!("  ({clean:?} → {dirty:?}):");
        for t in &list {
            println!("    {t}");
        }
        lists.push(list);
    }

    let policy = Policy::from_lists(&lists);
    println!(
        "\nAlgorithms 2+3 — empirical policy ({} transformations):",
        policy.len()
    );
    for (t, p) in policy.entries().iter().take(8) {
        println!("  {p:>6.3}  {t}");
    }

    println!("\nConditional policy for a value never seen during learning:");
    for (t, p) in policy.top_k("providence hospital 60614", 5) {
        println!("  {p:>6.3}  {t}");
    }

    println!("\nAlgorithm 4 — synthetic errors from clean values:");
    let corrects: Vec<String> = ["providence hospital", "madison", "53703", "heart attack"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cfg = AugmentConfig {
        alpha: 1.0,
        ..AugmentConfig::default()
    };
    for ex in augment(&corrects, 0, &policy, &[], &cfg) {
        println!("  {:?} → {:?}", ex.clean, ex.dirty);
    }
    println!(
        "\nThe policy concentrates on ε↦\"x\" — it has learned the x-typo\n\
         channel from five examples and will synthesize training errors\n\
         that look like the dataset's real ones (paper Figure 8)."
    );
}
