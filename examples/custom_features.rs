//! Using the representation model `Q` directly: fit the featurizer,
//! inspect a cell's features (observed vs hypothetical value), and run a
//! single-component ablation — the building blocks for extending
//! HoloDetect with custom detectors.
//!
//! ```text
//! cargo run --release --example custom_features
//! ```

use holodetect_repro::data::CellId;
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::features::{Component, FeatureConfig, Featurizer};

fn main() {
    let g = generate(DatasetKind::Hospital, 400, 21);
    let f = Featurizer::fit(&g.dirty, &g.constraints, FeatureConfig::fast());
    let layout = f.layout();
    println!(
        "representation Q on {}: {} wide features + {} learnable branches = {} dims",
        g.kind.name(),
        layout.wide_dim(),
        layout.n_branches(),
        layout.total_dim()
    );
    println!("wide features: {}", layout.wide_names.join(", "));
    println!("branches: {}\n", layout.branch_names.join(", "));

    // Pick an actually-erroneous cell and compare its features against
    // the hypothetical repaired value.
    let (cell, truth_value) = g
        .truth
        .error_cells()
        .next()
        .map(|(c, v)| (c, v.to_owned()))
        .expect("dataset has errors");
    let dirty_vec = f.features(&g.dirty, cell);
    let fixed_vec = f.features_with_value(&g.dirty, cell, &truth_value);
    println!(
        "cell t{}.{}: observed {:?} vs truth {:?}",
        cell.t(),
        g.dirty.schema().name(cell.a()),
        g.dirty.cell_value(cell),
        truth_value
    );
    println!("feature deltas (dirty − repaired) on the wide block:");
    for (i, name) in layout.wide_names.iter().enumerate() {
        let delta = dirty_vec[i] - fixed_vec[i];
        if delta.abs() > 1e-6 {
            println!("  {name:<18} {:+.4}", delta);
        }
    }

    // Ablate one component and watch the layout shrink.
    let ablated = Featurizer::fit(
        &g.dirty,
        &g.constraints,
        FeatureConfig::fast().without(Component::Neighborhood),
    );
    println!(
        "\nwithout the neighborhood model: {} dims (was {})",
        ablated.layout().total_dim(),
        layout.total_dim()
    );

    // Features support batch extraction for custom models.
    let cells: Vec<(CellId, Option<String>)> =
        g.dirty.cell_ids().take(8).map(|c| (c, None)).collect();
    let batch = f.features_batch(&g.dirty, &cells, 2);
    println!(
        "batch featurized {} cells x {} dims",
        batch.len(),
        batch[0].len()
    );
}
