//! Train on a sample, score a stream: the deployment lifecycle.
//!
//! HoloDetect's pitch is "label few, detect many". This example takes it
//! to its production conclusion: fit **once** on a labeled reference
//! sample, save the artifact to disk, then — as if in a fresh serving
//! process — load it back and score batch after batch of rows the model
//! never saw at fit time (same world, new tuples, shipped as CSV so even
//! the interning pool is new).
//!
//! ```text
//! cargo run --release --example score_new_data
//! ```

use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
use holodetect_repro::data::csv::{parse_csv, write_csv};
use holodetect_repro::data::{CellId, Dataset, DatasetBuilder, GroundTruth};
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::eval::{Confusion, FitContext, Split, SplitConfig, TrainedModel};

/// Copy a row range of `d` into a standalone dataset (fresh pool),
/// going through `Schema::row_from_pairs` — the same validated
/// name→value ingest path the serving layer uses for JSON rows.
fn row_slice(d: &Dataset, range: std::ops::Range<usize>) -> Dataset {
    let schema = d.schema().clone();
    let mut b = DatasetBuilder::new(schema.clone());
    for t in range {
        let pairs = d
            .schema()
            .names()
            .iter()
            .map(String::as_str)
            .zip(d.tuple_values(t));
        let row = schema.row_from_pairs(pairs).expect("same schema");
        b.push_row(row.values());
    }
    b.build()
}

fn main() {
    // One world of hospitals; the first 400 rows are the reference
    // sample we can label, the remaining 200 arrive later as a stream.
    let g = generate(DatasetKind::Hospital, 600, 7);
    let n_ref = 400;
    let ref_dirty = row_slice(&g.dirty, 0..n_ref);
    let ref_clean = row_slice(&g.clean, 0..n_ref);
    let ref_truth = GroundTruth::from_pair(&ref_clean, &ref_dirty);

    // ---- Day 0: train on the labeled reference sample -----------------
    let split = Split::new(
        &ref_dirty,
        SplitConfig {
            train_frac: 0.15,
            sampling_frac: 0.0,
            seed: 1,
        },
    );
    let train = split.training_set(&ref_dirty, &ref_truth);
    println!(
        "reference sample: {} tuples, {} labeled cells",
        ref_dirty.n_tuples(),
        train.len()
    );

    let ctx = FitContext {
        dirty: &ref_dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 3,
    };
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 30;
    let model = HoloDetect::new(cfg).fit_model(&ctx);

    // Persist the artifact — this file is the deployable unit.
    let path = std::env::temp_dir().join(format!("holodetect-{}.holoart", std::process::id()));
    model.save(&path).expect("save artifact");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("artifact saved: {} ({bytes} bytes)\n", path.display());

    // ---- Day N: a serving process restarts and loads the artifact -----
    let served = FittedHoloDetect::load(&path).expect("load artifact");
    std::fs::remove_file(&path).ok();

    // Incoming batches of rows the model never saw, shipped as CSV and
    // scored one after another through the same loaded artifact.
    let mut overall = Confusion::default();
    for (i, start) in (n_ref..600).step_by(67).enumerate() {
        let end = (start + 67).min(600);
        let incoming_dirty = row_slice(&g.dirty, start..end);
        let incoming_clean = row_slice(&g.clean, start..end);
        let truth = GroundTruth::from_pair(&incoming_clean, &incoming_dirty);
        let batch = parse_csv(&write_csv(&incoming_dirty)).expect("csv batch");

        let cells: Vec<CellId> = batch.cell_ids().collect();
        let labels = served
            .predict_batch(&batch, &cells, served.default_threshold())
            .expect("schema-compatible batch");
        let mut c = Confusion::default();
        for (cell, label) in cells.iter().zip(&labels) {
            c.record(*label, truth.label(*cell));
            overall.record(*label, truth.label(*cell));
        }
        println!(
            "batch {i}: {} unseen cells — precision {:.3}  recall {:.3}  f1 {:.3}",
            cells.len(),
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
    println!(
        "\noverall on the unseen stream: precision {:.3}  recall {:.3}  f1 {:.3}",
        overall.precision(),
        overall.recall(),
        overall.f1()
    );
    println!(
        "\nthe artifact was fitted once, serialized, reloaded, and reused — no\n\
         retraining, no borrow of the fit-time data, typed errors on any\n\
         schema-incompatible batch."
    );
}
