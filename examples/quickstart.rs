//! Quickstart: detect errors in a small dirty table with HoloDetect.
//!
//! Builds a tiny Zip→City table, injects a few typos and swaps, labels
//! 20% of the tuples, and lets the AUG pipeline find the rest.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use holodetect_repro::constraints::parse_constraints;
use holodetect_repro::core::{HoloDetect, HoloDetectConfig};
use holodetect_repro::data::{DatasetBuilder, GroundTruth, Schema};
use holodetect_repro::eval::{Confusion, Detector, FitContext, Split, SplitConfig};

fn main() {
    // 1. A clean relation: zip codes determine cities and states.
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City", "State"]));
    let places = [
        ("60612", "Chicago", "IL"),
        ("60614", "Chicago", "IL"),
        ("53703", "Madison", "WI"),
        ("53706", "Madison", "WI"),
        ("94103", "San Francisco", "CA"),
    ];
    for i in 0..400 {
        let (zip, city, state) = places[i % places.len()];
        b.push_row(&[zip, city, state]);
    }
    let clean = b.build();

    // 2. Corrupt a handful of cells (typos + a value swap).
    let mut dirty = clean.clone();
    dirty.set_value(3, 1, "Chicagq"); // typo
    dirty.set_value(57, 0, "6061x4"); // typo in zip
    dirty.set_value(120, 1, "Madison"); // swapped city
    dirty.set_value(201, 2, "IK"); // typo in state
    dirty.set_value(310, 1, "San Francsico"); // typo
    let truth = GroundTruth::from_pair(&clean, &dirty);
    println!(
        "dataset: {} tuples x {} attrs, {} erroneous cells",
        dirty.n_tuples(),
        dirty.n_attrs(),
        truth.n_errors()
    );

    // 3. Constraints (optional but helpful): Zip -> City, State.
    let constraints = parse_constraints("Zip -> City, State", dirty.schema()).unwrap();

    // 4. Label 20% of tuples; evaluate on the rest.
    let split = Split::new(
        &dirty,
        SplitConfig {
            train_frac: 0.2,
            sampling_frac: 0.0,
            seed: 7,
        },
    );
    let train = split.training_set(&dirty, &truth);
    let eval_cells = split.test_cells(&dirty);
    println!(
        "labeled cells: {} — detecting over {} cells",
        train.len(),
        eval_cells.len()
    );

    // 5. Fit once. The returned model owns the trained pipeline and can
    //    score/predict arbitrary cell batches without re-training.
    let ctx = FitContext {
        dirty: &dirty,
        train: &train,
        sampling: None,
        constraints: &constraints,
        seed: 1,
    };
    let detector = HoloDetect::new(HoloDetectConfig::fast());
    let model = detector.fit(&ctx);

    // 6. Score: calibrated error probabilities, then labels at the
    //    holdout-tuned threshold.
    let scores = model
        .score_batch(&dirty, &eval_cells)
        .expect("schema-compatible");
    let labels = model
        .predict_batch(&dirty, &eval_cells, model.default_threshold())
        .expect("schema-compatible");

    // 7. Show what was flagged, with confidences.
    let mut confusion = Confusion::default();
    println!(
        "\nflagged cells (threshold {:.2}):",
        model.default_threshold()
    );
    for ((cell, label), p) in eval_cells.iter().zip(&labels).zip(&scores) {
        confusion.record(*label, truth.label(*cell));
        if label.is_error() {
            println!(
                "  t{}.{} = {:?} (P(error) = {:.3}, truth: {:?})",
                cell.t(),
                dirty.schema().name(cell.a()),
                dirty.cell_value(*cell),
                p,
                truth.true_value(*cell, &dirty),
            );
        }
    }
    println!(
        "\nprecision {:.3}  recall {:.3}  f1 {:.3}",
        confusion.precision(),
        confusion.recall(),
        confusion.f1()
    );
}
