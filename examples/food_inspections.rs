//! Food-inspections cleaning — the paper's motivating Food scenario:
//! conflicting zip codes / facility types for the same establishment.
//!
//! Compares HoloDetect against the rule-based CV baseline and the
//! outlier detector OD on swap-heavy errors (Food is 76% value swaps),
//! then prints a per-method breakdown by error type.
//!
//! ```text
//! cargo run --release --example food_inspections
//! ```

use holodetect_repro::baselines::{ConstraintViolations, OutlierDetector};
use holodetect_repro::core::{HoloDetect, HoloDetectConfig};
use holodetect_repro::data::Label;
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::eval::{Confusion, DetectionContext, Detector, Split, SplitConfig};
use holodetect_repro::text::levenshtein;

fn main() {
    let g = generate(DatasetKind::Food, 1500, 9);
    println!(
        "Food-inspections data: {} tuples x {} attrs, {} errors (~76% swaps)\n",
        g.dirty.n_tuples(),
        g.dirty.n_attrs(),
        g.truth.n_errors()
    );

    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.05,
            sampling_frac: 0.0,
            seed: 5,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let eval_cells = split.test_cells(&g.dirty);

    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 40;
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(HoloDetect::new(cfg)),
        Box::new(ConstraintViolations),
        Box::new(OutlierDetector::default()),
    ];
    for det in &detectors {
        // The one-call convenience shim: fit + predict at the fitted
        // threshold (see `quickstart` for the staged fit/score/predict
        // API).
        let ctx = DetectionContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            eval_cells: &eval_cells,
            seed: 2,
        };
        let labels = det.detect(&ctx);
        let mut c = Confusion::default();
        // Split recall by error type: a swap is "far" from the truth in
        // edit distance relative to its length; a typo is close.
        let (mut typo_hit, mut typo_all, mut swap_hit, mut swap_all) = (0, 0, 0, 0);
        for (cell, label) in eval_cells.iter().zip(&labels) {
            let actual = g.truth.label(*cell);
            c.record(*label, actual);
            if actual == Label::Error {
                let truth_v = g.truth.true_value(*cell, &g.dirty);
                let dirty_v = g.dirty.cell_value(*cell);
                let is_typo = levenshtein(truth_v, dirty_v) <= 2;
                if is_typo {
                    typo_all += 1;
                    typo_hit += usize::from(label.is_error());
                } else {
                    swap_all += 1;
                    swap_hit += usize::from(label.is_error());
                }
            }
        }
        println!(
            "{:<4}  P {:.3}  R {:.3}  F1 {:.3}   recall on typos {}/{}  on swaps {}/{}",
            det.name(),
            c.precision(),
            c.recall(),
            c.f1(),
            typo_hit,
            typo_all,
            swap_hit,
            swap_all
        );
    }
    println!(
        "\nSwaps keep values in-domain, so format and frequency signals are\n\
         silent; HoloDetect leans on co-occurrence, constraint, and tuple-\n\
         embedding features to catch them (paper §6.2)."
    );
}
