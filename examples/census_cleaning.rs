//! Census cleaning under extreme imbalance — the paper's Adult scenario.
//!
//! Adult-style data has roughly one erroneous cell per thousand, the
//! regime where plain supervision collapses (few or zero error examples
//! in `T`) and augmentation shines. This example pits AUG against
//! SuperL on the same split and prints both scores.
//!
//! ```text
//! cargo run --release --example census_cleaning
//! ```

use holodetect_repro::core::{HoloDetect, HoloDetectConfig, Strategy};
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::eval::{Confusion, Detector, FitContext, Split, SplitConfig};

fn main() {
    let g = generate(DatasetKind::Adult, 4000, 42);
    println!(
        "Adult-like census data: {} tuples x {} attrs, {} errors ({:.3}% of cells)",
        g.dirty.n_tuples(),
        g.dirty.n_attrs(),
        g.truth.n_errors(),
        100.0 * g.truth.n_errors() as f64 / g.dirty.n_cells() as f64
    );

    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.05,
            sampling_frac: 0.0,
            seed: 3,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let (p, n) = train.class_counts();
    println!(
        "training set: {} cells ({} correct, {} errors) — few-shot indeed\n",
        train.len(),
        p,
        n
    );
    let eval_cells = split.test_cells(&g.dirty);

    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 40;

    for strategy in [
        Strategy::Augmentation { target_ratio: None },
        Strategy::Supervised,
    ] {
        let ctx = FitContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            seed: 11,
        };
        let det = HoloDetect::with_strategy(cfg.clone(), strategy);
        // Fit once, then classify the whole evaluation set in one
        // reusable predict pass.
        let model = det.fit(&ctx);
        let labels = model
            .predict_batch(&g.dirty, &eval_cells, model.default_threshold())
            .expect("fit dataset is schema-compatible");
        let mut c = Confusion::default();
        for (cell, label) in eval_cells.iter().zip(&labels) {
            c.record(*label, g.truth.label(*cell));
        }
        println!(
            "{:<8}  precision {:.3}  recall {:.3}  f1 {:.3}",
            det.name(),
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
    println!(
        "\nAUG generates synthetic errors from the learned noisy channel, so\n\
         the classifier sees a balanced training signal that plain\n\
         supervision never gets (paper §6.5, Table 2)."
    );
}
