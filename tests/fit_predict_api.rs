//! Integration tests for the staged fit / score / predict API: one fit
//! produces a `Send + Sync` `TrainedModel` that serves arbitrary cell
//! batches — sequentially or across threads — without re-training, with
//! Platt-calibrated probabilities (§4.2) behind `score`.

use holodetect_repro::core::{HoloDetect, HoloDetectConfig};
use holodetect_repro::data::CellId;
use holodetect_repro::datagen::{generate, DatasetKind, GeneratedDataset};
use holodetect_repro::eval::{
    DetectionContext, Detector, FitContext, Split, SplitConfig, TrainedModel,
};

fn world(rows: usize, seed: u64) -> (GeneratedDataset, Split) {
    let g = generate(DatasetKind::Hospital, rows, seed);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.12,
            sampling_frac: 0.0,
            seed: 1,
        },
    );
    (g, split)
}

fn fast_cfg() -> HoloDetectConfig {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 15;
    cfg
}

/// Fit once, score two disjoint batches: the concatenation must equal
/// one whole-batch call — no retraining, no cross-batch state.
#[test]
fn fit_once_scores_disjoint_batches_consistently() {
    let (g, split) = world(200, 5);
    let train = split.training_set(&g.dirty, &g.truth);
    let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(80).collect();
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 7,
    };
    let model = HoloDetect::new(fast_cfg()).fit(&ctx);
    let (batch_a, batch_b) = cells.split_at(cells.len() / 3);
    let mut stitched = model.score_batch(&g.dirty, batch_a).unwrap();
    stitched.extend(model.score_batch(&g.dirty, batch_b).unwrap());
    assert_eq!(stitched, model.score_batch(&g.dirty, &cells).unwrap());
    // And predictions are reusable too.
    let la = model
        .predict_batch(&g.dirty, batch_a, model.default_threshold())
        .unwrap();
    let lb = model
        .predict_batch(&g.dirty, batch_b, model.default_threshold())
        .unwrap();
    let all = model
        .predict_batch(&g.dirty, &cells, model.default_threshold())
        .unwrap();
    assert_eq!(all, [la, lb].concat());
}

/// `TrainedModel: Send + Sync`: a single fitted HoloDetect model scores
/// cell batches concurrently from multiple threads, matching the serial
/// result exactly.
#[test]
fn one_model_scores_batches_in_parallel() {
    let (g, split) = world(180, 11);
    let train = split.training_set(&g.dirty, &g.truth);
    let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(64).collect();
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 3,
    };
    let model = HoloDetect::new(fast_cfg()).fit(&ctx);
    let serial = model.score_batch(&g.dirty, &cells).unwrap();
    let batches: Vec<&[CellId]> = cells.chunks(16).collect();
    let parallel: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = batches
            .iter()
            .map(|batch| s.spawn(|| model.score_batch(&g.dirty, batch).unwrap()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scoring thread"))
            .collect()
    });
    assert_eq!(parallel.concat(), serial);
}

/// Platt calibration through the new API: scores are probabilities in
/// [0, 1] and monotone with the raw classifier margins.
#[test]
fn scores_are_calibrated_probabilities_monotone_in_logits() {
    let (g, split) = world(220, 5);
    let train = split.training_set(&g.dirty, &g.truth);
    let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(120).collect();
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 2,
    };
    let det = HoloDetect::new(fast_cfg());
    let fitted = det.fit_model(&ctx);
    let probs = fitted.score_batch(&g.dirty, &cells).unwrap();
    assert!(
        probs.iter().all(|p| (0.0..=1.0).contains(p)),
        "scores outside [0,1]"
    );
    // Monotone with the raw margins: sort by margin, probabilities must
    // be non-decreasing.
    let raw = fitted.raw_scores(&g.dirty, &cells).unwrap();
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&i, &j| raw[i].total_cmp(&raw[j]));
    for w in order.windows(2) {
        assert!(
            probs[w[0]] <= probs[w[1]] + 1e-9,
            "calibration broke monotonicity: margin {} -> p {} vs margin {} -> p {}",
            raw[w[0]],
            probs[w[0]],
            raw[w[1]],
            probs[w[1]]
        );
    }
    // The model saw real signal: not all probabilities identical.
    let spread = probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - probs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread > 0.01, "degenerate probabilities, spread {spread}");
}

/// On a fixed-seed dataset the one-call `detect()` shim and an explicit
/// `fit` + `predict(cells, 0.5)` agree — calibration puts the fitted
/// threshold's decision boundary at ordinary probability scale (on this
/// seed the holdout-tuned threshold lands exactly on the canonical 0.5).
#[test]
fn predict_at_half_agrees_with_detect_on_fixed_seed() {
    let g = generate(DatasetKind::Adult, 200, 5);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.12,
            sampling_frac: 0.0,
            seed: 1,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let eval_cells = split.test_cells(&g.dirty);
    let ctx = DetectionContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        eval_cells: &eval_cells,
        seed: 2,
    };
    let det = HoloDetect::new(fast_cfg());
    let shim_labels = det.detect(&ctx);
    let model = det.fit(&ctx.fit_context());
    // The parity below holds because tuning lands on 0.5 for this seed;
    // assert that premise first so a benign training change that moves
    // the threshold fails legibly (fix: re-pin the dataset seed).
    assert_eq!(
        model.default_threshold(),
        0.5,
        "seed no longer tunes to 0.5 — re-pin the fixed seed for this test"
    );
    let at_half = model.predict_batch(&g.dirty, &eval_cells, 0.5).unwrap();
    let disagreements = shim_labels
        .iter()
        .zip(&at_half)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        disagreements,
        0,
        "detect() (threshold {:.2}) and predict(·, 0.5) disagree on {disagreements}/{} cells",
        model.default_threshold(),
        eval_cells.len()
    );
}

/// The explicit incremental hook: refitting with extra labeled examples
/// produces a model that still serves the full API.
#[test]
fn refit_hook_extends_training_without_full_repipeline() {
    let (g, split) = world(160, 9);
    let train = split.training_set(&g.dirty, &g.truth);
    let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(40).collect();
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 4,
    };
    let det = HoloDetect::new(fast_cfg());
    let fitted = det.fit_model(&ctx);
    let n_before = fitted.n_train_examples();
    // Label a few more cells from ground truth and refit.
    let extra: Vec<holodetect_repro::core::trainer::TrainExample> = g
        .dirty
        .cell_ids()
        .take(10)
        .map(|cell| holodetect_repro::core::trainer::TrainExample {
            cell,
            value: g.dirty.cell_value(cell).to_owned(),
            label: g.truth.label(cell),
        })
        .collect();
    let refitted = fitted.refit_with(extra).expect("refit of a trained model");
    assert_eq!(refitted.n_train_examples(), n_before + 10);
    let probs = refitted.score_batch(&g.dirty, &cells).unwrap();
    assert_eq!(probs.len(), cells.len());
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
}

/// Predict-path cost is decoupled from training: scoring a batch with a
/// fitted model is far cheaper than fitting (the criterion benchmark
/// `bench_predict` quantifies this; here we only sanity-bound it).
#[test]
fn predict_is_cheaper_than_fit() {
    let (g, split) = world(200, 5);
    let train = split.training_set(&g.dirty, &g.truth);
    let cells: Vec<CellId> = split.test_cells(&g.dirty).into_iter().take(100).collect();
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 6,
    };
    let det = HoloDetect::new(fast_cfg());
    let fit_started = std::time::Instant::now();
    let model = det.fit(&ctx);
    let fit_time = fit_started.elapsed();
    let predict_started = std::time::Instant::now();
    let labels = model
        .predict_batch(&g.dirty, &cells, model.default_threshold())
        .unwrap();
    let predict_time = predict_started.elapsed();
    assert_eq!(labels.len(), cells.len());
    assert!(
        predict_time < fit_time,
        "predict ({predict_time:?}) should be far cheaper than fit ({fit_time:?})"
    );
}
