//! End-to-end tests for the streaming serving path: a live model served
//! over real TCP (HTTP → registry → live session), with ingest, drift,
//! refit endpoints, and — the PR's availability criterion — scoring
//! that keeps succeeding, parity-correct, while a drift-triggered
//! background refit retrains and hot-swaps the model.

use holodetect_repro::core::{HoloDetect, HoloDetectConfig};
use holodetect_repro::data::{CellId, Dataset, DatasetBuilder, GroundTruth, Schema};
use holodetect_repro::eval::FitContext;
use holodetect_repro::serve::{
    self, BatchConfig, HttpConfig, Json, ModelRegistry, ProfConfig, RunningServer, ServeConfig,
    TraceConfig,
};
use holodetect_repro::stream::{LiveModel, RefitScheduler, RefitTarget, StreamConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- world

fn fit_live(tag: &str, stream_cfg: StreamConfig) -> (Arc<LiveModel>, PathBuf, PathBuf) {
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
    for _ in 0..25 {
        b.push_row(&["60612", "Chicago"]);
        b.push_row(&["53703", "Madison"]);
    }
    let clean = b.build();
    let mut dirty = clean.clone();
    dirty.set_value(0, 1, "Cxhicago");
    dirty.set_value(7, 1, "Madxison");
    let truth = GroundTruth::from_pair(&clean, &dirty);
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 12;
    let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
    let dcs = holodetect_repro::constraints::parse_constraints("Zip -> City", dirty.schema())
        .expect("constraints");
    let model = HoloDetect::new(cfg).fit_model(&FitContext {
        dirty: &dirty,
        train: &train,
        sampling: None,
        constraints: &dcs,
        seed: 3,
    });
    let stamp = format!(
        "{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    );
    let artifact = std::env::temp_dir().join(format!("holo-sserve-{stamp}.holoart"));
    let log = std::env::temp_dir().join(format!("holo-sserve-{stamp}.dlog"));
    std::fs::remove_file(&log).ok();
    model.save(&artifact).expect("save artifact");
    let live = Arc::new(LiveModel::open(&artifact, &log, stream_cfg).expect("open live"));
    (live, artifact, log)
}

fn start_server(registry: Arc<ModelRegistry>) -> RunningServer {
    serve::start(
        "127.0.0.1:0",
        ServeConfig {
            http: HttpConfig {
                workers: 4,
                ..HttpConfig::default()
            },
            batch: BatchConfig {
                max_batch_cells: 64,
                max_wait: Duration::from_millis(5),
            },
            trace: TraceConfig::default(),
            prof: ProfConfig::default(),
        },
        registry,
    )
    .expect("bind port 0")
}

// ------------------------------------------------------------- raw http

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

fn rows_body(rows: &[(&str, &str)]) -> String {
    let rows = rows
        .iter()
        .map(|(z, c)| {
            Json::Obj(vec![
                ("Zip".to_string(), Json::Str(z.to_string())),
                ("City".to_string(), Json::Str(c.to_string())),
            ])
        })
        .collect();
    Json::Obj(vec![("rows".to_string(), Json::Arr(rows))]).to_string()
}

fn field(body: &str, name: &str) -> f64 {
    serve::parse_json(body)
        .unwrap_or_else(|e| panic!("bad json {body:?}: {e}"))
        .get(name)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("no numeric {name:?} in {body}"))
}

fn scores_of(body: &str) -> Vec<u64> {
    serve::parse_json(body)
        .unwrap_or_else(|e| panic!("bad response {body:?}: {e}"))
        .get("scores")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("no scores in {body}"))
        .iter()
        .map(|v| v.as_f64().expect("numeric score").to_bits())
        .collect()
}

/// Asserts the newest `/v1/models/{name}/refits` timeline: expected
/// trigger, installed, and nonzero adapt / refit_with / install phases.
fn assert_refit_timeline(addr: SocketAddr, trigger: &str) {
    let (status, body) = http(addr, "GET", "/v1/models/food/refits", "");
    assert_eq!(status, 200, "body: {body}");
    let doc = serve::parse_json(&body).expect("refits json");
    assert_eq!(doc.get("model").and_then(Json::as_str), Some("food"));
    let refits = doc.get("refits").and_then(Json::as_arr).expect("refits");
    assert!(!refits.is_empty(), "no refit timelines in {body}");
    let newest = &refits[0];
    assert_eq!(
        newest.get("trigger").and_then(Json::as_str),
        Some(trigger),
        "body: {body}"
    );
    assert_eq!(
        newest.get("installed").and_then(Json::as_bool),
        Some(true),
        "newest refit must be installed: {body}"
    );
    let phases = newest.get("phases").and_then(Json::as_arr).expect("phases");
    for want in ["snapshot", "adapt", "refit_with", "persist", "install"] {
        let micros = phases
            .iter()
            .find(|p| p.get("phase").and_then(Json::as_str) == Some(want))
            .unwrap_or_else(|| panic!("no {want:?} phase in {body}"))
            .get("micros")
            .and_then(Json::as_f64)
            .expect("micros");
        assert!(micros >= 1.0, "{want} phase must be nonzero: {body}");
    }
    let total = newest
        .get("total_micros")
        .and_then(Json::as_f64)
        .expect("total_micros");
    assert!(total >= phases.len() as f64, "body: {body}");
}

fn probe_batch(tag: usize) -> Dataset {
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
    b.push_row(&[format!("606{:02}", tag % 100), "Chicago".to_string()]);
    b.push_row(&["53703".to_string(), format!("Madiso{tag}")]);
    b.build()
}

// ---------------------------------------------------------------- tests

#[test]
fn ingest_is_read_your_writes_and_visible_in_scores_and_metrics() {
    let (live, artifact, log) = fit_live("ingest", StreamConfig::default());
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_live("food", Arc::clone(&live));
    let server = start_server(registry);
    let addr = server.addr();

    // A probe scored before any ingest…
    let probe = probe_batch(99);
    let cells: Vec<CellId> = probe.cell_ids().collect();
    let (status, body) = post(
        addr,
        "/v1/models/food/score",
        &rows_body(&[("60699", "Chicago"), ("53703", "Madiso99")]),
    );
    assert_eq!(status, 200, "body: {body}");
    let before = scores_of(&body);

    // Ingest rows teaching the model the probe's zip.
    let (status, body) = post(
        addr,
        "/v1/models/food/rows",
        &rows_body(&[("60699", "Chicago"); 8]),
    );
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(field(&body, "appended"), 8.0);
    assert_eq!(field(&body, "epoch"), 8.0);

    // Scores change, and serve-side equals in-process live scoring bit
    // for bit (read-your-writes through the same session).
    let (status, body) = post(
        addr,
        "/v1/models/food/score",
        &rows_body(&[("60699", "Chicago"), ("53703", "Madiso99")]),
    );
    assert_eq!(status, 200, "body: {body}");
    let after = scores_of(&body);
    assert_ne!(before, after, "ingest must be visible to scoring");
    let direct: Vec<u64> = live
        .score_batch(&probe, &cells)
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    assert_eq!(
        after, direct,
        "served scores must equal live session scores"
    );

    // Ingest validation: unknown column → 400 naming it; nothing applied.
    let (status, body) = post(
        addr,
        "/v1/models/food/rows",
        r#"{"rows": [{"Zip": "1", "Town": "x"}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("Town"), "body: {body}");
    assert_eq!(live.epoch(), 8);

    // The metrics page carries the global counter and per-model gauges.
    let (_, page) = http(addr, "GET", "/metrics", "");
    assert!(page.contains("holo_serve_rows_ingested_total 8"), "{page}");
    assert!(
        page.contains("holo_stream_epoch{model=\"food\"} 8"),
        "{page}"
    );
    assert!(page.contains("holo_stream_generation{model=\"food\"} 0"));

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}

#[test]
fn drift_and_refit_endpoints_report_and_hot_swap() {
    let (live, artifact, log) = fit_live(
        "refit",
        StreamConfig {
            drift_threshold: 0.2,
            min_rows_between_refits: 8,
            baseline_sample_rows: 64,
            ..StreamConfig::default()
        },
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_live("food", Arc::clone(&live));
    let server = start_server(registry);
    let addr = server.addr();

    // Drift on a fresh model is zero.
    let (status, body) = http(addr, "GET", "/v1/models/food/drift", "");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(field(&body, "drift"), 0.0);
    assert_eq!(field(&body, "epoch"), 0.0);

    // Uniformly FD-violating traffic drives drift up.
    let bad: Vec<(String, String)> = (0..16)
        .map(|i| ("60612".to_string(), format!("Springfield{i}")))
        .collect();
    let bad_refs: Vec<(&str, &str)> = bad.iter().map(|(z, c)| (z.as_str(), c.as_str())).collect();
    let (status, body) = post(addr, "/v1/models/food/rows", &rows_body(&bad_refs));
    assert_eq!(status, 200, "body: {body}");
    assert!(field(&body, "drift") > 0.2, "body: {body}");
    let (_, body) = http(addr, "GET", "/v1/models/food/drift", "");
    assert!(field(&body, "rows_since_refit") >= 16.0, "body: {body}");

    // Forced refit: retrain + persist + hot-swap, epoch preserved.
    let (status, body) = post(addr, "/v1/models/food/refit", "");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(field(&body, "generation"), 1.0);
    assert_eq!(field(&body, "epoch"), 16.0);
    let (_, body) = http(addr, "GET", "/v1/models/food/drift", "");
    assert_eq!(
        field(&body, "rows_since_refit"),
        0.0,
        "refit must re-anchor the drift window (body: {body})"
    );
    // Scoring still works and the generation shows on metrics.
    let (status, _) = post(
        addr,
        "/v1/models/food/score",
        &rows_body(&[("60612", "Chicago")]),
    );
    assert_eq!(status, 200);
    let (_, page) = http(addr, "GET", "/metrics", "");
    assert!(
        page.contains("holo_stream_generation{model=\"food\"} 1"),
        "{page}"
    );
    assert!(page.contains("holo_serve_stream_refits_total 1"), "{page}");

    // The refit left a phase-attributed timeline behind.
    assert_refit_timeline(addr, "manual");
    // Refits on a ghost model are 404; wrong method is 405.
    assert_eq!(http(addr, "GET", "/v1/models/ghost/refits", "").0, 404);
    assert_eq!(post(addr, "/v1/models/food/refits", "").0, 405);

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}

#[test]
fn stream_endpoints_on_static_models_are_409() {
    // A static entry (no streaming): rows/drift/refit are conflicts,
    // and wrong methods are 405s.
    let (live, artifact, log) = fit_live("static", StreamConfig::default());
    drop(live); // only the artifact file is needed
    let registry = Arc::new(ModelRegistry::new());
    registry.load_insert("plain", &artifact).unwrap();
    let server = start_server(registry);
    let addr = server.addr();

    let (status, body) = post(addr, "/v1/models/plain/rows", &rows_body(&[("1", "a")]));
    assert_eq!(status, 409, "body: {body}");
    assert!(body.contains("streaming"), "body: {body}");
    assert_eq!(http(addr, "GET", "/v1/models/plain/drift", "").0, 409);
    assert_eq!(http(addr, "GET", "/v1/models/plain/refits", "").0, 409);
    assert_eq!(post(addr, "/v1/models/plain/labels", "{}").0, 409);
    assert_eq!(post(addr, "/v1/models/plain/refit", "").0, 409);
    assert_eq!(post(addr, "/v1/models/ghost/rows", "{}").0, 404);
    assert_eq!(post(addr, "/v1/models/plain/drift", "").0, 405);
    assert_eq!(http(addr, "GET", "/v1/models/plain/rows", "").0, 405);

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}

/// The availability criterion: `POST .../rows` and `POST .../score`
/// keep succeeding — no 5xx, no stalls — while the scheduler's
/// drift-triggered refit retrains and hot-swaps in the background, and
/// scores stay parity-correct with the live session throughout.
#[test]
fn scoring_and_ingest_stay_available_during_drift_triggered_refit() {
    let (live, artifact, log) = fit_live(
        "avail",
        StreamConfig {
            drift_threshold: 0.2,
            min_rows_between_refits: 8,
            baseline_sample_rows: 64,
            ..StreamConfig::default()
        },
    );
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_live("food", Arc::clone(&live));
    // Scheduler hot-swaps through the registry's reload, as production
    // wiring does.
    let scheduler = {
        let registry = Arc::clone(&registry);
        RefitScheduler::spawn(
            vec![RefitTarget {
                live: Arc::clone(&live),
                swap: Arc::new(move || match registry.reload("food") {
                    Some(Ok(_)) => Ok(()),
                    Some(Err(e)) => Err(e.to_string()),
                    None => Err("model vanished".into()),
                }),
            }],
            Duration::from_millis(10),
        )
    };
    let server = start_server(registry);
    let addr = server.addr();

    // Drive drift up so the scheduler refits while clients hammer.
    let bad: Vec<(String, String)> = (0..24)
        .map(|i| ("60612".to_string(), format!("Springfield{i}")))
        .collect();
    let bad_refs: Vec<(&str, &str)> = bad.iter().map(|(z, c)| (z.as_str(), c.as_str())).collect();
    assert_eq!(
        post(addr, "/v1/models/food/rows", &rows_body(&bad_refs)).0,
        200
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    std::thread::scope(|s| {
        // Scorers: every response must be 200 and bitwise-equal to an
        // immediate in-process score of the same rows.
        let mut handles = Vec::new();
        for client in 0..3 {
            let live = Arc::clone(&live);
            handles.push(s.spawn(move || {
                let mut round = 0usize;
                while live.generation() == 0 && Instant::now() < deadline {
                    round += 1;
                    let probe = probe_batch(client * 10 + round % 7);
                    let cells: Vec<CellId> = probe.cell_ids().collect();
                    let body =
                        rows_body(&[(probe.value(0, 0), "Chicago"), ("53703", probe.value(1, 1))]);
                    let state_before = (live.generation(), live.epoch());
                    let started = Instant::now();
                    let (status, resp) = post(addr, "/v1/models/food/score", &body);
                    assert_eq!(status, 200, "scoring failed mid-refit: {resp}");
                    assert!(
                        started.elapsed() < Duration::from_secs(10),
                        "scoring stalled during refit"
                    );
                    // Parity: served scores must equal in-process live
                    // scores, but the comparison is only well-defined
                    // when no ingest (epoch) or hot swap (generation)
                    // landed anywhere in the window — the concurrent
                    // ingester thread makes that a real race, so rounds
                    // where the state moved are skipped (parity on a
                    // quiet session has its own test above).
                    let direct: Vec<u64> = live
                        .score_batch(&probe, &cells)
                        .expect("live score")
                        .iter()
                        .map(|p| p.to_bits())
                        .collect();
                    if (live.generation(), live.epoch()) == state_before {
                        assert_eq!(scores_of(&resp), direct, "round {round}");
                    }
                }
            }));
        }
        // An ingester: rows keep landing throughout the refit.
        {
            let live = Arc::clone(&live);
            handles.push(s.spawn(move || {
                let mut tag = 0;
                while live.generation() == 0 && Instant::now() < deadline {
                    tag += 1;
                    let zip = format!("607{:02}", tag % 100);
                    let (status, resp) = post(
                        addr,
                        "/v1/models/food/rows",
                        &rows_body(&[(&zip, "Chicago")]),
                    );
                    assert_eq!(status, 200, "ingest failed mid-refit: {resp}");
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });

    assert!(
        live.generation() >= 1,
        "drift-triggered refit never hot-swapped"
    );
    assert!(live.refits_total() >= 1);
    // No ingested epoch was lost across the swap.
    assert_eq!(live.epoch(), 24 + (live.rows_ingested() - 24));
    // Post-swap: serving and the live session agree bitwise again.
    let probe = probe_batch(3);
    let cells: Vec<CellId> = probe.cell_ids().collect();
    let (status, resp) = post(
        addr,
        "/v1/models/food/score",
        &rows_body(&[(probe.value(0, 0), "Chicago"), ("53703", probe.value(1, 1))]),
    );
    assert_eq!(status, 200);
    let direct: Vec<u64> = live
        .score_batch(&probe, &cells)
        .unwrap()
        .iter()
        .map(|p| p.to_bits())
        .collect();
    assert_eq!(scores_of(&resp), direct);

    // The background refit recorded a drift-triggered timeline with
    // every phase attributed and the install marked.
    assert_refit_timeline(addr, "drift");

    scheduler.shutdown();
    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}

/// The profiling acceptance criterion: under a concurrent ingest+score
/// run, the live session's `state` lock — the rwlock every score reads
/// and every ingest writes — must rank its wait time above a lock the
/// run never contends (`timelines`, only touched by refits) in the
/// `/v1/prof` contention profile.
#[test]
fn concurrent_ingest_and_score_contend_the_state_lock_in_the_profile() {
    let (live, artifact, log) = fit_live("contend", StreamConfig::default());
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_live("food", Arc::clone(&live));
    let server = start_server(registry);
    let addr = server.addr();

    // Lock profiles are process-wide and cumulative, and contention is
    // probabilistic — so hammer in rounds until the ranking holds (or a
    // generous deadline proves it never will).
    let lock_waits = || -> Vec<(String, f64)> {
        let (status, body) = http(addr, "GET", "/v1/prof", "");
        assert_eq!(status, 200, "body: {body}");
        serve::parse_json(&body)
            .expect("prof json")
            .get("locks")
            .and_then(Json::as_arr)
            .expect("locks array")
            .iter()
            .map(|l| {
                (
                    l.get("lock").and_then(Json::as_str).expect("name").into(),
                    l.get("wait_micros").and_then(Json::as_f64).expect("wait"),
                )
            })
            .collect()
    };
    let wait_of = |waits: &[(String, f64)], name: &str| -> f64 {
        waits
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| *w)
            .unwrap_or_else(|| panic!("lock {name:?} not in profile: {waits:?}"))
    };

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut round = 0usize;
    loop {
        round += 1;
        // 2 ingest writers racing 4 score readers on the same session.
        std::thread::scope(|s| {
            for w in 0..2 {
                s.spawn(move || {
                    for i in 0..10 {
                        let zip = format!("61{:03}", (round + w * 50 + i) % 1000);
                        let (status, resp) = post(
                            addr,
                            "/v1/models/food/rows",
                            &rows_body(&[(&zip, "Chicago")]),
                        );
                        assert_eq!(status, 200, "{resp}");
                    }
                });
            }
            for r in 0..4 {
                s.spawn(move || {
                    for i in 0..10 {
                        let city = format!("Madiso{}", (round + r * 50 + i) % 100);
                        let (status, resp) = post(
                            addr,
                            "/v1/models/food/score",
                            &rows_body(&[("53703", &city)]),
                        );
                        assert_eq!(status, 200, "{resp}");
                    }
                });
            }
        });
        let waits = lock_waits();
        let state = wait_of(&waits, "state");
        let timelines = wait_of(&waits, "timelines");
        if state > timelines {
            // The profile is served wait-descending, so the ranking the
            // operator sees leads with the contended lock.
            let state_rank = waits.iter().position(|(n, _)| n == "state").unwrap();
            let quiet_rank = waits.iter().position(|(n, _)| n == "timelines").unwrap();
            assert!(
                state_rank < quiet_rank,
                "profile must rank state above timelines: {waits:?}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "state lock never out-waited the quiet timelines lock \
             after {round} rounds: {waits:?}"
        );
    }

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}

/// The adaptation loop over HTTP: operator labels are validated through
/// the schema path, feed the probe signal, show up in the enriched
/// drift report and metrics, and drain through a refit.
#[test]
fn labels_endpoint_probes_buffers_and_adapts_the_refit() {
    let (live, artifact, log) = fit_live("labels", StreamConfig::default());
    let registry = Arc::new(ModelRegistry::new());
    registry.insert_live("food", Arc::clone(&live));
    let server = start_server(registry);
    let addr = server.addr();

    // Swap-drifted traffic: in-domain values, crossed pairs.
    let (status, body) = post(
        addr,
        "/v1/models/food/rows",
        &rows_body(&[
            ("60612", "Madison"),
            ("53703", "Chicago"),
            ("60612", "Madison"),
            ("53703", "Chicago"),
            ("60612", "Madison"),
            ("53703", "Chicago"),
        ]),
    );
    assert_eq!(status, 200, "body: {body}");

    // Label four of the appended rows (reference had 50) with their
    // clean versions; the values object rides the row validation path.
    let labels_body = r#"{"labels": [
        {"row": 50, "values": {"Zip": "60612", "City": "Chicago"}},
        {"row": 51, "values": {"Zip": "53703", "City": "Madison"}},
        {"row": 52, "values": {"Zip": "60612", "City": "Chicago"}},
        {"row": 53, "values": {"Zip": "53703", "City": "Madison"}}
    ]}"#;
    let (status, body) = post(addr, "/v1/models/food/labels", labels_body);
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(field(&body, "accepted"), 4.0);
    assert_eq!(field(&body, "labels_pending"), 4.0);
    assert_eq!(field(&body, "probe_checked"), 8.0, "2 cells per label");

    // The enriched drift report names the shape statistics per
    // attribute and which signals fired.
    let (status, body) = http(addr, "GET", "/v1/models/food/drift", "");
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(field(&body, "labels_pending"), 4.0);
    assert_eq!(field(&body, "probe_checked"), 8.0);
    let doc = serve::parse_json(&body).expect("drift json");
    for stat in ["psi", "ks"] {
        let per_attr = doc.get(stat).unwrap_or_else(|| panic!("no {stat}"));
        for attr in ["Zip", "City"] {
            assert!(
                per_attr.get(attr).and_then(Json::as_f64).is_some(),
                "{stat} missing attribute {attr}: {body}"
            );
        }
    }
    assert!(doc.get("fired").and_then(Json::as_arr).is_some(), "{body}");
    let signals = doc
        .get("signals")
        .and_then(Json::as_arr)
        .expect("signals array");
    assert_eq!(signals.len(), 5, "five drift signals: {body}");

    // Validation failures are 400s that name the problem and leave the
    // buffer alone; wrong method is a 405.
    let (status, body) = post(
        addr,
        "/v1/models/food/labels",
        r#"{"labels": [{"row": 0, "values": {"Zip": "1", "Town": "x"}}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("Town"), "body: {body}");
    let (status, body) = post(
        addr,
        "/v1/models/food/labels",
        r#"{"labels": [{"row": 9999, "values": {"Zip": "1", "City": "x"}}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert_eq!(live.labels_pending(), 4);
    assert_eq!(http(addr, "GET", "/v1/models/food/labels", "").0, 405);

    // Metrics: the labels counter, the pending gauge, and per-attribute
    // PSI/KS gauges.
    let (_, page) = http(addr, "GET", "/metrics", "");
    assert!(
        page.contains("holo_serve_labels_received_total 4"),
        "{page}"
    );
    assert!(
        page.contains("holo_stream_labels_pending{model=\"food\"} 4"),
        "{page}"
    );
    assert!(
        page.contains("holo_adapt_psi{model=\"food\",attr=\"Zip\"}"),
        "{page}"
    );
    assert!(
        page.contains("holo_adapt_ks{model=\"food\",attr=\"City\"}"),
        "{page}"
    );

    // A forced refit consumes the labels through the adaptive path.
    let (status, body) = post(addr, "/v1/models/food/refit", "");
    assert_eq!(status, 200, "body: {body}");
    let (_, body) = http(addr, "GET", "/v1/models/food/drift", "");
    assert_eq!(field(&body, "labels_pending"), 0.0, "body: {body}");

    server.shutdown();
    std::fs::remove_file(&artifact).ok();
    std::fs::remove_file(&log).ok();
}
