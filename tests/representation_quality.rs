//! Integration tests for the representation model's *discriminativeness*
//! — the property the paper's model `Q` depends on: "the likelihood of
//! correct cells given Q will be high, while the likelihood of erroneous
//! cells given Q is low" (§3.2).

use holodetect_repro::data::CellId;
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::features::{FeatureConfig, Featurizer};

/// Mean of feature `idx` over (erroneous, correct) cells.
fn feature_means(kind: DatasetKind, rows: usize, name: &str) -> (f32, f32) {
    let g = generate(kind, rows, 13);
    let f = Featurizer::fit(&g.dirty, &g.constraints, FeatureConfig::fast());
    let idx = f
        .layout()
        .wide_names
        .iter()
        .position(|n| n == name)
        .unwrap_or_else(|| panic!("no feature {name}"));
    let mut err = (0.0f64, 0usize);
    let mut ok = (0.0f64, 0usize);
    for t in 0..g.dirty.n_tuples() {
        for a in 0..g.dirty.n_attrs() {
            let cell = CellId::new(t, a);
            let v = f.features(&g.dirty, cell)[idx] as f64;
            if g.truth.label(cell).is_error() {
                err = (err.0 + v, err.1 + 1);
            } else if (t + a) % 7 == 0 {
                // sample correct cells to keep the test fast
                ok = (ok.0 + v, ok.1 + 1);
            }
        }
    }
    assert!(err.1 > 0 && ok.1 > 0);
    ((err.0 / err.1 as f64) as f32, (ok.0 / ok.1 as f64) as f32)
}

#[test]
fn erroneous_cells_have_lower_empirical_frequency() {
    let (err, ok) = feature_means(DatasetKind::Hospital, 400, "empirical:freq");
    assert!(
        err < ok * 0.5,
        "errors should be rare values: err {err:.4} vs ok {ok:.4}"
    );
}

#[test]
fn erroneous_cells_are_format_outliers() {
    // Hospital errors are x-typos: their least-probable 3-gram is rarer,
    // i.e. the (−ln p)-style format feature is larger.
    let (err, ok) = feature_means(DatasetKind::Hospital, 400, "format:3gram");
    assert!(
        err > ok,
        "errors should have rarer n-grams: err {err:.4} vs ok {ok:.4}"
    );
}

#[test]
fn erroneous_cells_have_weaker_cooccurrence_support() {
    let (err, ok) = feature_means(DatasetKind::Soccer, 500, "cooc:0");
    assert!(
        err < ok,
        "errors should co-occur less: err {err:.4} vs ok {ok:.4}"
    );
}

#[test]
fn violation_features_fire_on_erroneous_cells() {
    let (err, ok) = feature_means(DatasetKind::Hospital, 400, "violations:dc0");
    // dc0 is ZipCode -> City: errors on those attrs spike it, correct
    // cells should mostly read zero.
    assert!(
        err >= ok,
        "violations should mark errors: err {err:.4} vs ok {ok:.4}"
    );
}

#[test]
fn feature_vectors_distinguish_dirty_from_repaired() {
    // For a majority of erroneous cells, the dirty feature vector must
    // differ from the hypothetically-repaired one — otherwise the model
    // has no signal at all for those cells.
    let g = generate(DatasetKind::Food, 600, 29);
    let f = Featurizer::fit(&g.dirty, &g.constraints, FeatureConfig::fast());
    let mut differs = 0usize;
    let mut total = 0usize;
    for (cell, truth_value) in g.truth.error_cells().take(60) {
        let dirty = f.features(&g.dirty, cell);
        let fixed = f.features_with_value(&g.dirty, cell, truth_value);
        total += 1;
        if dirty.iter().zip(&fixed).any(|(a, b)| (a - b).abs() > 1e-6) {
            differs += 1;
        }
    }
    assert!(
        differs * 10 >= total * 9,
        "only {differs}/{total} erroneous cells are distinguishable"
    );
}
