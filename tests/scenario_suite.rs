//! End-to-end tests for the `holo-scenarios` suite (the PR's
//! acceptance criteria):
//!
//! * one tiny scenario runs the full fit → save/load → serve → stream
//!   → drift → refit lifecycle deterministically: a fixed seed yields a
//!   byte-for-byte identical `SCENARIOS.json` (with `--no-latency`
//!   semantics, i.e. latency fields omitted),
//! * the quality gate passes against the run's own numbers, and
//! * the gate demonstrably fails on an injected quality regression,
//!   naming the scenario and metric in the diff.

use holodetect_repro::scenarios::{
    check, config, report_json, run_suite, SuiteConfig, SuiteReport, GATED_METRICS,
};
use holodetect_repro::serve::Json;
use std::sync::OnceLock;

/// A tiny single-scenario configuration: big enough for stable curves,
/// small enough that the whole lifecycle (two fits, an HTTP server, a
/// refit) stays test-suite friendly.
fn tiny_config() -> SuiteConfig {
    SuiteConfig {
        scenarios: vec![config::hospital()],
        rows: 80,
        drift_rows: 24,
        epochs: 6,
        seed: 11,
        train_frac: 0.2,
        out: None,
        check: None,
        tolerance: 0.05,
        emit_latency: false,
        label_budget: 6,
        label_sweep: vec![0, 6],
    }
}

/// Two independent runs of the tiny suite, shared across tests (each
/// run fits a model, serves it over TCP, streams a drift tail, and
/// refits — no need to repeat that per assertion).
fn runs() -> &'static (SuiteReport, SuiteReport) {
    static RUNS: OnceLock<(SuiteReport, SuiteReport)> = OnceLock::new();
    RUNS.get_or_init(|| {
        let cfg = tiny_config();
        let a = run_suite(&cfg).expect("first suite run");
        let b = run_suite(&cfg).expect("second suite run");
        (a, b)
    })
}

#[test]
fn fixed_seed_reproduces_scenarios_json_byte_for_byte() {
    let (a, b) = runs();
    let a_text = report_json(a, false).to_string();
    let b_text = report_json(b, false).to_string();
    assert_eq!(
        a_text, b_text,
        "two runs with the same seed must serialize identically"
    );
    // And the report actually carries the lifecycle's quality story.
    let doc = holodetect_repro::serve::json::parse(&a_text).expect("report parses");
    let scenario = &doc.get("scenarios").unwrap().as_arr().unwrap()[0];
    assert_eq!(
        scenario.get("name").and_then(Json::as_str),
        Some("hospital")
    );
    assert!(
        scenario.get("latency").is_none(),
        "latency fields must be omitted in deterministic mode"
    );
    let quality = scenario.get("quality").expect("quality object");
    for &metric in GATED_METRICS {
        let v = quality
            .get(metric)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("metric {metric} missing or non-numeric"));
        assert!(
            v.is_finite() && (0.0..=1.0).contains(&v),
            "{metric} out of range: {v}"
        );
    }
    // The drift tail must really have been measured.
    assert!(quality.get("drift_signal").and_then(Json::as_f64).is_some());
    assert!(
        quality
            .get("n_drift_errors")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    // The adaptation story must be in the report: a firing verdict, the
    // per-detector names, the labels actually spent, and the label-
    // budget sweep at exactly the configured budgets with sane curves.
    assert!(quality.get("would_refit").and_then(Json::as_bool).is_some());
    assert!(quality.get("drift_fired").and_then(Json::as_arr).is_some());
    assert!(quality.get("labels_used").and_then(Json::as_f64).unwrap() <= 6.0);
    let sweep = quality
        .get("label_sweep")
        .and_then(Json::as_arr)
        .expect("label_sweep array");
    let budgets: Vec<f64> = sweep
        .iter()
        .map(|p| p.get("labels").and_then(Json::as_f64).unwrap())
        .collect();
    assert_eq!(budgets, vec![0.0, 6.0]);
    for p in sweep {
        let pr = p
            .get("pr_auc")
            .and_then(Json::as_f64)
            .expect("sweep pr_auc");
        assert!((0.0..=1.0).contains(&pr), "sweep pr_auc out of range: {pr}");
    }
}

#[test]
fn quality_gate_passes_on_itself_and_fails_on_injected_regression() {
    let (a, _) = runs();
    let current = report_json(a, false);

    // Gate against the run's own numbers: zero tolerance, must pass.
    let self_check = check(&current, &current, 0.0).expect("self-check runs");
    assert!(self_check.passed(), "{:?}", self_check.failures);
    // All gated metrics are compared, plus the would_refit capability
    // ratchet when the run's detector fired.
    let fired = a.scenarios[0].quality.would_refit;
    assert_eq!(
        self_check.diffs.len(),
        GATED_METRICS.len() + usize::from(fired)
    );

    // Inject a quality regression: pretend the committed baseline had a
    // much better base PR-AUC than this run achieved.
    let injected = bump_metric(&current, "hospital", "pr_auc", 0.2);
    let gated = check(&current, &injected, 0.05).expect("gate runs");
    assert!(!gated.passed(), "injected regression must fail the gate");
    assert!(
        gated
            .failures
            .iter()
            .any(|f| f.contains("hospital") && f.contains("pr_auc")),
        "failure must name the scenario and metric: {:?}",
        gated.failures
    );
    assert!(gated.render().contains("REGRESSED"));

    // A drop within tolerance passes: baseline only 0.01 above.
    let nearby = bump_metric(&current, "hospital", "pr_auc", 0.01);
    assert!(check(&current, &nearby, 0.05).expect("gate runs").passed());
}

/// A copy of `doc` with `quality[metric] += delta` for `scenario`.
fn bump_metric(doc: &Json, scenario: &str, metric: &str, delta: f64) -> Json {
    fn walk(j: &Json, scenario: &str, metric: &str, delta: f64, in_scenario: bool) -> Json {
        match j {
            Json::Obj(pairs) => {
                let this_scenario = in_scenario
                    || pairs
                        .iter()
                        .any(|(k, v)| k == "name" && v.as_str() == Some(scenario));
                Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, v)| {
                            if this_scenario && k == "quality" {
                                let Json::Obj(q) = v else {
                                    panic!("quality not an object")
                                };
                                let bumped = q
                                    .iter()
                                    .map(|(mk, mv)| {
                                        if mk == metric {
                                            let x = mv.as_f64().expect("metric numeric");
                                            (mk.clone(), Json::Num(x + delta))
                                        } else {
                                            (mk.clone(), mv.clone())
                                        }
                                    })
                                    .collect();
                                (k.clone(), Json::Obj(bumped))
                            } else {
                                (k.clone(), walk(v, scenario, metric, delta, this_scenario))
                            }
                        })
                        .collect(),
                )
            }
            Json::Arr(items) => Json::Arr(
                items
                    .iter()
                    .map(|v| walk(v, scenario, metric, delta, in_scenario))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    walk(doc, scenario, metric, delta, false)
}
