//! Integration tests for the dataset-independent artifact lifecycle:
//! fit on a reference sample → save → load in a "fresh process" → score
//! unseen, separately-loaded batches. The contract under test:
//!
//! * a trained model is `'static` and scores datasets it never saw at
//!   fit time (including CSVs parsed after fitting),
//! * scores depend on cell *values*, not on which interning pool or
//!   loading path produced the dataset (golden-score stability),
//! * save → load reproduces scores and predictions bit for bit,
//! * schema mismatches and out-of-range cells are typed errors, never
//!   garbage scores.

use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
use holodetect_repro::data::csv::{parse_csv, write_csv};
use holodetect_repro::data::{CellId, Dataset};
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::eval::{Detector, FitContext, ModelError, Split, SplitConfig, TrainedModel};
use std::path::PathBuf;

fn fast_cfg() -> HoloDetectConfig {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 12;
    cfg
}

/// Fit a model on one generated Hospital sample.
fn fit_reference() -> (Dataset, FittedHoloDetect) {
    let g = generate(DatasetKind::Hospital, 200, 5);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.15,
            sampling_frac: 0.0,
            seed: 1,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 7,
    };
    let model = HoloDetect::new(fast_cfg()).fit_model(&ctx);
    (g.dirty, model)
}

/// An unseen batch with the same schema: a later draw from the same
/// generator family (different rows, different values, fresh pool).
fn unseen_batch() -> Dataset {
    generate(DatasetKind::Hospital, 60, 99).dirty
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("holo-lifecycle-{}-{name}", std::process::id()))
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Train on one split, then score a batch that was serialized to CSV and
/// freshly re-loaded: the scores must be *golden* — identical to scoring
/// the same rows through the original in-memory dataset, because scoring
/// depends on values, not on interning pools or loading paths.
#[test]
fn csv_reloaded_unseen_batch_scores_match_in_memory_batch() {
    let (_, model) = fit_reference();
    let batch = unseen_batch();
    let reloaded = parse_csv(&write_csv(&batch)).expect("csv roundtrip");
    assert!(batch.same_shape(&reloaded));

    let cells: Vec<CellId> = batch.cell_ids().collect();
    let direct = model.score_batch(&batch, &cells).unwrap();
    let via_csv = model.score_batch(&reloaded, &cells).unwrap();
    assert_eq!(
        bits(&direct),
        bits(&via_csv),
        "scores depend on the loading path, not just the values"
    );
    assert!(direct.iter().all(|p| (0.0..=1.0).contains(p)));
    // The model actually discriminates on the unseen batch.
    let spread = direct.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - direct.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread > 1e-3,
        "degenerate scores on unseen data, spread {spread}"
    );
}

/// Save → load reproduces scores and predictions bitwise — on the fit
/// dataset *and* on an unseen batch — satisfying the deployment
/// contract: an artifact loaded in a fresh process behaves identically
/// to the in-process model.
#[test]
fn save_load_roundtrip_bitwise_identical_on_fit_and_unseen_data() {
    let (dirty, model) = fit_reference();
    let batch = unseen_batch();
    let fit_cells: Vec<CellId> = dirty.cell_ids().take(120).collect();
    let batch_cells: Vec<CellId> = batch.cell_ids().collect();

    let path = tmp_path("roundtrip.holoart");
    model.save(&path).unwrap();
    let loaded = FittedHoloDetect::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.method(), model.method());
    assert_eq!(loaded.threshold().to_bits(), model.threshold().to_bits());

    for (data, cells) in [(&dirty, &fit_cells), (&batch, &batch_cells)] {
        let before = model.score_batch(data, cells).unwrap();
        let after = loaded.score_batch(data, cells).unwrap();
        assert_eq!(
            bits(&before),
            bits(&after),
            "scores drifted through save/load"
        );
        let thr = model.default_threshold();
        assert_eq!(
            model.predict_batch(data, cells, thr).unwrap(),
            loaded.predict_batch(data, cells, thr).unwrap(),
            "predictions drifted through save/load"
        );
    }
}

/// The trained model outlives everything it was fitted from: drop the
/// fit dataset, the training set, and the detector, then score a
/// dataset loaded afterwards.
#[test]
fn artifact_outlives_fit_context_and_scores_later_data() {
    let model: Box<dyn TrainedModel> = {
        let g = generate(DatasetKind::Hospital, 150, 3);
        let split = Split::new(
            &g.dirty,
            SplitConfig {
                train_frac: 0.15,
                sampling_frac: 0.0,
                seed: 2,
            },
        );
        let train = split.training_set(&g.dirty, &g.truth);
        let ctx = FitContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            seed: 4,
        };
        HoloDetect::new(fast_cfg()).fit(&ctx)
        // g, split, train all drop here.
    };
    let batch = unseen_batch();
    let scores = model.score_all(&batch).unwrap();
    assert_eq!(scores.len(), batch.n_cells());
}

/// A schema-incompatible dataset is a typed error — scoring must refuse
/// rather than hand back garbage probabilities.
#[test]
fn schema_mismatch_is_an_error_not_garbage() {
    let (_, model) = fit_reference();
    let other = generate(DatasetKind::Adult, 30, 1).dirty;
    let cells: Vec<CellId> = other.cell_ids().take(5).collect();
    match model.score_batch(&other, &cells) {
        Err(ModelError::SchemaMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("schema mismatch silently produced scores"),
    }
}

/// Cells addressing outside the scored dataset are typed errors too.
#[test]
fn out_of_bounds_cells_are_an_error() {
    let (_, model) = fit_reference();
    let batch = unseen_batch();
    let bad = vec![CellId::new(batch.n_tuples() + 7, 0)];
    assert!(matches!(
        model.score_batch(&batch, &bad),
        Err(ModelError::CellOutOfBounds { .. })
    ));
}

/// Refitting is part of the artifact lifecycle: a loaded artifact keeps
/// its training examples, so the incremental hook still works after a
/// process restart.
#[test]
fn loaded_artifact_still_supports_refit() {
    let (dirty, model) = fit_reference();
    let n = model.n_train_examples();
    let path = tmp_path("refit.holoart");
    model.save(&path).unwrap();
    let loaded = FittedHoloDetect::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let extra: Vec<_> = dirty
        .cell_ids()
        .take(5)
        .map(|cell| holodetect_repro::core::trainer::TrainExample {
            cell,
            value: dirty.cell_value(cell).to_owned(),
            label: holodetect_repro::data::Label::Correct,
        })
        .collect();
    let refitted = loaded.refit_with(extra).expect("loaded artifact refits");
    assert_eq!(refitted.n_train_examples(), n + 5);
    let cells: Vec<CellId> = dirty.cell_ids().take(20).collect();
    let scores = refitted.score_batch(&dirty, &cells).unwrap();
    assert!(scores.iter().all(|p| (0.0..=1.0).contains(p)));
}
