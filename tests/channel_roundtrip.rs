//! Integration tests for the noisy-channel loop: inject errors with one
//! channel, learn it back from examples, and verify the learned policy
//! regenerates errors with the same statistical signature.

use holodetect_repro::channel::{
    augment, learn_transformations, AugmentConfig, NaiveBayesRepair, Policy, RepairConfig, Template,
};
use holodetect_repro::data::Label;
use holodetect_repro::datagen::{generate, DatasetKind};

/// Learn the channel from ground-truth error pairs of a generated
/// dataset.
fn learned_policy(kind: DatasetKind, rows: usize) -> (Policy, usize) {
    let g = generate(kind, rows, 55);
    let lists: Vec<_> = g
        .truth
        .error_cells()
        .map(|(cell, clean)| learn_transformations(clean, g.dirty.cell_value(cell)))
        .collect();
    let n = lists.len();
    (Policy::from_lists(&lists), n)
}

#[test]
fn hospital_channel_learns_x_typos() {
    let (policy, n_pairs) = learned_policy(DatasetKind::Hospital, 600);
    assert!(n_pairs > 20, "need errors to learn from, got {n_pairs}");
    // The single most useful transformation of the x-typo channel.
    let add_x = policy
        .entries()
        .iter()
        .find(|(t, _)| t.from.is_empty() && t.to == "x");
    assert!(add_x.is_some(), "ε↦x not learned");
    // x-insertions should dominate the non-whole-string mass.
    let x_mass: f64 = policy
        .entries()
        .iter()
        .filter(|(t, _)| t.to.contains('x') && t.from.len() <= 2)
        .map(|(_, p)| p)
        .sum();
    assert!(x_mass > 0.1, "x-typo mass too small: {x_mass}");
}

#[test]
fn learned_channel_regenerates_hospital_like_errors() {
    let (policy, _) = learned_policy(DatasetKind::Hospital, 600);
    let corrects: Vec<String> = ["providence hospital", "60612", "heart attack", "scip-inf-3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cfg = AugmentConfig {
        alpha: 1.0,
        seed: 3,
        ..Default::default()
    };
    let out = augment(&corrects, 0, &policy, &[], &cfg);
    assert!(!out.is_empty());
    // The synthetic errors should overwhelmingly add x's — the learned
    // channel's signature.
    let with_x = out
        .iter()
        .filter(|e| e.dirty.matches('x').count() > e.clean.matches('x').count())
        .count();
    assert!(
        with_x * 3 >= out.len() * 2,
        "only {with_x}/{} synthetic errors carry the x signature",
        out.len()
    );
}

#[test]
fn swap_heavy_channel_learns_whole_value_exchanges() {
    // Food is 76% swaps: whole-value exchanges should be prominent.
    let g = generate(DatasetKind::Food, 1000, 19);
    let mut whole_exchanges = 0usize;
    let mut total = 0usize;
    for (cell, clean) in g.truth.error_cells() {
        let dirty = g.dirty.cell_value(cell);
        let ts = learn_transformations(clean, dirty);
        total += 1;
        // The top-level transformation is always the whole exchange; a
        // *pure* swap learns nothing else (disjoint-ish strings).
        if ts.len() <= 3 && ts[0].template() == Template::Exchange {
            whole_exchanges += 1;
        }
    }
    assert!(total > 10);
    // Swapped values often share syllables, so the recursion may learn a
    // few sub-transformations too; still, a large share of errors should
    // reduce to (near-)pure whole-value exchanges.
    assert!(
        whole_exchanges * 3 > total,
        "{whole_exchanges}/{total} swaps learned as whole exchanges"
    );
}

#[test]
fn nb_repair_precision_on_fd_structured_data() {
    // Table 6's claim: the weak-supervision repairs are precise enough
    // to serve as error examples (paper: ≥ 0.71 at full scale).
    let g = generate(DatasetKind::Hospital, 1000, 7);
    let nb = NaiveBayesRepair::build(&g.dirty, RepairConfig::default());
    let repairs = nb.repairs(&g.dirty);
    assert!(!repairs.is_empty(), "NB found nothing to repair");
    let tp = repairs
        .iter()
        .filter(|r| g.truth.label(r.cell) == Label::Error)
        .count();
    let precision = tp as f64 / repairs.len() as f64;
    assert!(
        precision > 0.5,
        "NB precision {precision:.3} over {} repairs",
        repairs.len()
    );
}

#[test]
fn policy_conditionals_are_distributions_on_real_values() {
    let (policy, _) = learned_policy(DatasetKind::Soccer, 800);
    let g = generate(DatasetKind::Soccer, 100, 2);
    for t in 0..20 {
        for a in 0..g.dirty.n_attrs() {
            let cond = policy.conditional(g.dirty.value(t, a));
            if cond.is_empty() {
                continue;
            }
            let total: f64 = cond.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "conditional mass {total}");
        }
    }
}
