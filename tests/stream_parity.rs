//! The streaming subsystem's hard guarantee, tested end to end at the
//! trained-model level (the PR's acceptance criterion):
//!
//! For **any** interleaving of appends, updates, and deletes applied to
//! a fitted model through `apply_delta`, a subsequent `score_batch` is
//! **bitwise-identical** to a model whose count-based representation
//! was rebuilt from scratch over the dataset at the same epoch (same
//! frozen embeddings/classifier — exactly what
//! `rebuild_representation_at` produces).
//!
//! Fitting is expensive, so one model is fitted once and every property
//! case clones it through the in-memory snapshot path (`save_to` /
//! `load_from`) — which doubles as a continuous test that snapshots are
//! faithful.

use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
use holodetect_repro::data::{CellId, Dataset, DatasetBuilder, DeltaOp, GroundTruth, Schema};
use holodetect_repro::eval::{FitContext, TrainedModel};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The fitted model, serialized once (with a denial constraint so the
/// violation indexes are exercised).
fn snapshot() -> &'static [u8] {
    static SNAP: OnceLock<Vec<u8>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..25 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 8;
        let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
        let dcs = holodetect_repro::constraints::parse_constraints("Zip -> City", dirty.schema())
            .expect("constraints");
        let model = HoloDetect::new(cfg).fit_model(&FitContext {
            dirty: &dirty,
            train: &train,
            sampling: None,
            constraints: &dcs,
            seed: 3,
        });
        let mut buf = Vec::new();
        model.save_to(&mut buf).expect("snapshot");
        buf
    })
}

fn fresh_model() -> FittedHoloDetect {
    FittedHoloDetect::load_from(&mut std::io::Cursor::new(snapshot())).expect("load snapshot")
}

/// Resolve generated `(kind, tuple, zip, city)` tuples into an always
/// applicable op sequence over a dataset currently holding `rows` rows.
fn resolve_ops(raw: &[(u8, u16, u8, u8)], mut rows: usize) -> Vec<DeltaOp> {
    let zips = ["60612", "53703", "94110", "10001"];
    let cities = ["Chicago", "Madison", "Springfield", "Cxhicago", "SF"];
    let mut out = Vec::new();
    for &(kind, t, z, c) in raw {
        match kind % 4 {
            // Appends twice as likely: the streaming workload shape.
            0 | 3 => {
                out.push(DeltaOp::Append {
                    values: vec![
                        zips[z as usize % zips.len()].to_string(),
                        cities[c as usize % cities.len()].to_string(),
                    ],
                });
                rows += 1;
            }
            1 if rows > 0 => {
                let attr = (z as usize) % 2;
                let value = if attr == 0 {
                    zips[c as usize % zips.len()]
                } else {
                    cities[c as usize % cities.len()]
                };
                out.push(DeltaOp::Update {
                    tuple: t as usize % rows,
                    attr,
                    value: value.to_string(),
                });
            }
            2 if rows > 1 => {
                out.push(DeltaOp::Delete {
                    tuple: t as usize % rows,
                });
                rows -= 1;
            }
            _ => {}
        }
    }
    out
}

fn score_bits(model: &FittedHoloDetect, d: &Dataset, cells: &[CellId]) -> Vec<u64> {
    model
        .score_batch(d, cells)
        .expect("score")
        .iter()
        .map(|p| p.to_bits())
        .collect()
}

proptest! {
    /// Random delta interleavings: incremental maintenance scores
    /// bitwise-identically to a from-scratch rebuild at the same epoch,
    /// on the (grown) reference and on a foreign batch.
    #[test]
    fn random_interleavings_score_bitwise_equal_to_rebuild(
        raw in proptest::collection::vec((0u8..4, 0u16..128, 0u8..8, 0u8..8), 1..18)
    ) {
        let mut live = fresh_model();
        let mut rebuilt = fresh_model();
        let base_rows = live.artifact().expect("fitted").reference().n_tuples();
        let ops = resolve_ops(&raw, base_rows);

        // The dataset at the final epoch, replayed independently.
        let mut replica = live.artifact().expect("fitted").reference().clone();
        for op in &ops {
            live.apply_delta(op).expect("incremental apply");
            replica.apply_delta(op).expect("replica apply");
        }
        rebuilt.rebuild_representation_at(&replica).expect("rebuild");

        // Parity on the maintained reference itself (sampled cells)…
        let reference = live.artifact().expect("fitted").reference().clone();
        prop_assert_eq!(reference.n_tuples(), replica.n_tuples());
        let cells: Vec<CellId> = reference.cell_ids().step_by(3).take(40).collect();
        prop_assert_eq!(
            score_bits(&live, &reference, &cells),
            score_bits(&rebuilt, &replica, &cells)
        );

        // …and on a foreign batch with seen and unseen values.
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        b.push_row(&["60612", "Chicago"]);
        b.push_row(&["60612", "Springfield"]);
        b.push_row(&["99999", "Nowhere"]);
        let batch = b.build();
        let cells: Vec<CellId> = batch.cell_ids().collect();
        prop_assert_eq!(
            score_bits(&live, &batch, &cells),
            score_bits(&rebuilt, &batch, &cells)
        );
    }
}
