//! End-to-end tests for the `holo-serve` subsystem: a real fitted
//! artifact served over real TCP by the full stack (HTTP worker pool →
//! JSON ingest → registry → micro-batcher → `score_batch`).
//!
//! The contract under test (the PR's acceptance criterion):
//!
//! * concurrent HTTP score requests return scores **bitwise-identical**
//!   to in-process `score_batch` on the same rows/cells,
//! * typed failures map to the documented HTTP statuses,
//! * malformed requests (broken HTTP, broken JSON, wrong shapes) are
//!   4xx responses that never take the server down,
//! * a mid-flight `POST .../reload` hot-swaps the model without
//!   breaking in-flight or subsequent scoring,
//! * shutdown drains cleanly.

use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
use holodetect_repro::data::{CellId, Dataset, DatasetBuilder, GroundTruth, Schema};
use holodetect_repro::eval::{FitContext, TrainedModel};
use holodetect_repro::serve::{
    self, BatchConfig, HttpConfig, Json, ModelRegistry, ProfConfig, RunningServer, ServeConfig,
    TraceConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- world

/// A small two-column world with injected typos (the `fitted.rs` test
/// world, kept tiny so the whole suite fits in CI).
fn world() -> (Dataset, GroundTruth) {
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
    for _ in 0..25 {
        b.push_row(&["60612", "Chicago"]);
        b.push_row(&["53703", "Madison"]);
    }
    let clean = b.build();
    let mut dirty = clean.clone();
    dirty.set_value(0, 1, "Cxhicago");
    dirty.set_value(7, 1, "Madxison");
    let truth = GroundTruth::from_pair(&clean, &dirty);
    (dirty, truth)
}

fn fit_artifact(tag: &str) -> (FittedHoloDetect, PathBuf) {
    let (dirty, truth) = world();
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 10;
    let train = truth.label_tuples(&dirty, &(0..20).collect::<Vec<_>>());
    let model = HoloDetect::new(cfg).fit_model(&FitContext {
        dirty: &dirty,
        train: &train,
        sampling: None,
        constraints: &[],
        seed: 3,
    });
    let path = std::env::temp_dir().join(format!(
        "holo-serve-it-{}-{tag}.holoart",
        std::process::id()
    ));
    model.save(&path).expect("save artifact");
    (model, path)
}

fn start_server(path: &std::path::Path) -> RunningServer {
    start_server_with(path, ProfConfig::default())
}

fn start_server_with(path: &std::path::Path, prof: ProfConfig) -> RunningServer {
    let registry = Arc::new(ModelRegistry::new());
    registry.load_insert("food", path).expect("load artifact");
    serve::start(
        "127.0.0.1:0",
        ServeConfig {
            http: HttpConfig {
                workers: 4,
                ..HttpConfig::default()
            },
            batch: BatchConfig {
                max_batch_cells: 64,
                max_wait: Duration::from_millis(10),
            },
            trace: TraceConfig::default(),
            prof,
        },
        registry,
    )
    .expect("bind port 0")
}

// ------------------------------------------------------------- raw http

/// One raw HTTP/1.1 round-trip on a fresh connection, returning the
/// status, the raw header block, and the body.
fn http_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes()).expect("send");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

/// One raw HTTP/1.1 round-trip on a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, body) = http_full(addr, method, path, body);
    (status, body)
}

/// The value of a response header (case-insensitive name), if present.
fn header_value(head: &str, name: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
    })
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(addr, "POST", path, body)
}

/// Rows of a dataset as the `{"rows": [...]}` JSON the server ingests.
fn rows_json(d: &Dataset) -> Json {
    let names = d.schema().names();
    let rows = (0..d.n_tuples())
        .map(|t| {
            Json::Obj(
                names
                    .iter()
                    .enumerate()
                    .map(|(a, n)| (n.clone(), Json::Str(d.value(t, a).to_string())))
                    .collect(),
            )
        })
        .collect();
    Json::Obj(vec![("rows".to_string(), Json::Arr(rows))])
}

fn scores_of(body: &str) -> Vec<f64> {
    let doc = serve::parse_json(body).unwrap_or_else(|e| panic!("bad response {body:?}: {e}"));
    doc.get("scores")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("no scores in {body}"))
        .iter()
        .map(|v| v.as_f64().expect("numeric score"))
        .collect()
}

/// A batch of rows the model never saw (distinct per `tag`).
fn unseen_batch(tag: usize) -> Dataset {
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
    b.push_row(&[format!("606{:02}", tag % 100), "Chicago".to_string()]);
    b.push_row(&["53703".to_string(), format!("Madis{tag}n")]);
    b.push_row(&["60612".to_string(), "Chicago".to_string()]);
    b.build()
}

// ---------------------------------------------------------------- tests

#[test]
fn concurrent_scores_are_bitwise_identical_to_in_process_score_batch() {
    let (model, path) = fit_artifact("parity");
    let server = start_server(&path);
    let addr = server.addr();

    // 6 client threads x 4 requests, concurrently, through the
    // micro-batcher; every response must equal a direct score_batch.
    std::thread::scope(|s| {
        let model = &model;
        let handles: Vec<_> = (0..6)
            .map(|client| {
                s.spawn(move || {
                    for round in 0..4 {
                        let batch = unseen_batch(client * 10 + round);
                        let cells: Vec<CellId> = batch.cell_ids().collect();
                        let expected = model.score_batch(&batch, &cells).expect("direct");
                        let (status, body) = post(
                            addr,
                            "/v1/models/food/score",
                            &rows_json(&batch).to_string(),
                        );
                        assert_eq!(status, 200, "body: {body}");
                        let served = scores_of(&body);
                        assert_eq!(
                            served.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                            expected.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                            "served scores differ from in-process score_batch"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    // The metrics page saw the traffic and the batcher's histograms.
    let (status, page) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(page.contains("holo_serve_requests_total"));
    assert!(page.contains("holo_serve_batch_cells_bucket"));
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn explicit_cells_and_predict_match_in_process_calls() {
    let (model, path) = fit_artifact("predict");
    let server = start_server(&path);
    let addr = server.addr();

    let batch = unseen_batch(7);
    // Score only the City column, by name and by index.
    let cells = vec![CellId::new(0, 1), CellId::new(2, 1)];
    let expected = model.score_batch(&batch, &cells).expect("direct");
    let mut doc = rows_json(&batch);
    if let Json::Obj(kvs) = &mut doc {
        kvs.push((
            "cells".to_string(),
            Json::Arr(vec![
                serve::parse_json(r#"{"row": 0, "attr": "City"}"#).unwrap(),
                serve::parse_json(r#"{"row": 2, "attr": 1}"#).unwrap(),
            ]),
        ));
    }
    let (status, body) = post(addr, "/v1/models/food/score", &doc.to_string());
    assert_eq!(status, 200, "body: {body}");
    assert_eq!(
        scores_of(&body)
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        expected.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
    );

    // predict returns thresholded labels consistent with predict_batch.
    let threshold = model.default_threshold();
    let expected_labels = model
        .predict_batch(&batch, &cells, threshold)
        .expect("direct predict");
    let (status, body) = post(addr, "/v1/models/food/predict", &doc.to_string());
    assert_eq!(status, 200, "body: {body}");
    let resp = serve::parse_json(&body).unwrap();
    assert_eq!(
        resp.get("threshold").and_then(Json::as_f64),
        Some(threshold)
    );
    let labels: Vec<String> = resp
        .get("labels")
        .and_then(Json::as_arr)
        .expect("labels")
        .iter()
        .map(|l| l.as_str().expect("label string").to_string())
        .collect();
    let expected_labels: Vec<String> = expected_labels
        .iter()
        .map(|l| if l.is_error() { "error" } else { "correct" }.to_string())
        .collect();
    assert_eq!(labels, expected_labels);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn errors_map_to_documented_statuses_and_server_survives() {
    let (_model, path) = fit_artifact("errors");
    let server = start_server(&path);
    let addr = server.addr();
    let ok_rows = rows_json(&unseen_batch(1)).to_string();

    // Unknown model → 404.
    let (status, body) = post(addr, "/v1/models/ghost/score", &ok_rows);
    assert_eq!(status, 404, "body: {body}");
    // Unknown endpoint → 404; wrong method → 405.
    assert_eq!(post(addr, "/v1/frobnicate", "{}").0, 404);
    assert_eq!(http(addr, "GET", "/v1/models/food/score", "").0, 405);
    assert_eq!(post(addr, "/metrics", "").0, 405);
    // Broken JSON → 400.
    let (status, body) = post(addr, "/v1/models/food/score", "{\"rows\": [");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("invalid json"));
    // Valid JSON, wrong shape → 400.
    assert_eq!(post(addr, "/v1/models/food/score", "{}").0, 400);
    assert_eq!(
        post(addr, "/v1/models/food/score", "{\"rows\": [42]}").0,
        400
    );
    // Unknown column in a row → 400 naming the column.
    let (status, body) = post(
        addr,
        "/v1/models/food/score",
        r#"{"rows": [{"Zip": "60612", "Town": "Chicago"}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("Town"), "body: {body}");
    // Missing column (arity mismatch) → 400.
    let (status, body) = post(
        addr,
        "/v1/models/food/score",
        r#"{"rows": [{"Zip": "60612"}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("City"), "body: {body}");
    // Out-of-bounds cell → 400 with the typed category.
    let (status, body) = post(
        addr,
        "/v1/models/food/score",
        r#"{"rows": [{"Zip": "60612", "City": "Chicago"}], "cells": [{"row": 99, "attr": "City"}]}"#,
    );
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("cell_out_of_bounds"), "body: {body}");
    // Raw garbage that isn't HTTP → 400, connection closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"\x00\x01\x02 utter garbage\r\n\r\n").unwrap();
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    assert!(resp.is_empty() || resp.contains("400"));

    // After all of that, the server still scores fine.
    let (status, _) = post(addr, "/v1/models/food/score", &ok_rows);
    assert_eq!(status, 200);
    // …and the error storm is visible per category on /metrics.
    let (_, page) = http(addr, "GET", "/metrics", "");
    assert!(
        page.contains("holo_serve_model_errors_total{category=\"cell_out_of_bounds\"} 1"),
        "page: {page}"
    );
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_flight_reload_hot_swaps_without_breaking_scoring() {
    let (model, path) = fit_artifact("reload");
    let server = start_server(&path);
    let addr = server.addr();

    // healthz lists the model before we start.
    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"food\""));

    // Scoring threads hammer the server while the main thread reloads
    // the artifact (same file → same weights → parity must survive).
    std::thread::scope(|s| {
        let model = &model;
        let scorers: Vec<_> = (0..4)
            .map(|client| {
                s.spawn(move || {
                    for round in 0..6 {
                        let batch = unseen_batch(100 + client * 10 + round);
                        let cells: Vec<CellId> = batch.cell_ids().collect();
                        let expected = model.score_batch(&batch, &cells).expect("direct");
                        let (status, body) = post(
                            addr,
                            "/v1/models/food/score",
                            &rows_json(&batch).to_string(),
                        );
                        assert_eq!(status, 200, "body: {body}");
                        assert_eq!(
                            scores_of(&body)
                                .iter()
                                .map(|p| p.to_bits())
                                .collect::<Vec<_>>(),
                            expected.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                            "scores drifted across a mid-flight reload"
                        );
                    }
                })
            })
            .collect();
        // Two reloads racing the scoring traffic.
        for _ in 0..2 {
            let (status, body) = post(addr, "/v1/models/food/reload", "");
            assert_eq!(status, 200, "body: {body}");
        }
        for h in scorers {
            h.join().expect("scorer thread");
        }
    });

    // Generations bumped: two successful reloads on top of load 0.
    let (_, body) = post(addr, "/v1/models/food/reload", "");
    let doc = serve::parse_json(&body).unwrap();
    assert_eq!(doc.get("generation").and_then(Json::as_f64), Some(3.0));

    // Reloading a model whose file vanished → 500 io, old model serves.
    std::fs::remove_file(&path).ok();
    let (status, body) = post(addr, "/v1/models/food/reload", "");
    assert_eq!(status, 500, "body: {body}");
    assert!(body.contains("\"io\""), "body: {body}");
    let (status, _) = post(
        addr,
        "/v1/models/food/score",
        &rows_json(&unseen_batch(5)).to_string(),
    );
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn traced_score_request_attributes_its_wall_time_to_stages() {
    let (_model, path) = fit_artifact("trace");
    let server = start_server(&path);
    let addr = server.addr();

    // A scored request comes back with an `x-holo-trace` id…
    let (status, head, body) = http_full(
        addr,
        "POST",
        "/v1/models/food/score",
        &rows_json(&unseen_batch(9)).to_string(),
    );
    assert_eq!(status, 200, "body: {body}");
    let id = header_value(&head, "x-holo-trace").expect("x-holo-trace header on a scored request");
    assert_eq!(id.len(), 16, "trace id is 16 hex chars, got {id:?}");

    // …whose span tree is fetchable by id and attributes the request's
    // wall time: batch-wait + score + encode must cover ≥ 90% of the
    // measured total (the 10ms micro-batch gather wait dominates).
    let (status, trace_body) = http(addr, "GET", &format!("/v1/trace/{id}"), "");
    assert_eq!(status, 200, "body: {trace_body}");
    let doc = serve::parse_json(&trace_body).expect("trace json");
    assert_eq!(doc.get("id").and_then(Json::as_str), Some(id.as_str()));
    assert_eq!(
        doc.get("endpoint").and_then(Json::as_str),
        Some("/v1/models/{name}/score")
    );
    let total = doc
        .get("total_micros")
        .and_then(Json::as_f64)
        .expect("total_micros");
    assert!(total > 0.0);
    let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
    let stage = |name: &str| -> f64 {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no {name:?} span in {trace_body}"))
            .get("duration_micros")
            .and_then(Json::as_f64)
            .expect("duration_micros")
    };
    let attributed = stage("batch-wait") + stage("score") + stage("encode");
    assert!(
        attributed >= 0.9 * total && attributed <= 1.1 * total,
        "stages must attribute the wall time: batch-wait+score+encode = \
         {attributed}us of {total}us total ({trace_body})"
    );

    // The ring serves it under /recent, and the slow store retains the
    // endpoint's worst exemplars.
    let (status, body) = http(addr, "GET", "/v1/trace/recent", "");
    assert_eq!(status, 200);
    assert!(
        body.contains(&id),
        "recent traces must include {id}: {body}"
    );
    let (status, body) = http(addr, "GET", "/v1/trace/slow", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("/v1/models/{name}/score"),
        "slow exemplars grouped by endpoint: {body}"
    );

    // Bad ids are typed errors, not panics.
    assert_eq!(http(addr, "GET", "/v1/trace/not-hex!", "").0, 400);
    assert_eq!(http(addr, "GET", "/v1/trace/00000000deadbeef", "").0, 404);

    // The stage histograms derived from the same spans are on /metrics.
    let (_, page) = http(addr, "GET", "/metrics", "");
    assert!(
        page.contains("holo_trace_stage_micros_bucket{stage=\"score\""),
        "page: {page}"
    );
    assert!(page.contains("holo_trace_recorded_total"), "page: {page}");
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn prof_snapshot_is_well_formed_monotone_and_stages_carry_alloc_notes() {
    let (_model, path) = fit_artifact("prof");
    let server = start_server_with(&path, ProfConfig { enabled: true });
    let addr = server.addr();

    // The snapshot parses and carries every documented section. The
    // profile is process-wide and cumulative, so absolute numbers are
    // whatever the rest of the suite left behind — the contract here is
    // shape + monotonicity, not magnitudes.
    let snapshot = |tag: &str| -> Json {
        let (status, body) = http(addr, "GET", "/v1/prof", "");
        assert_eq!(status, 200, "{tag}: body: {body}");
        serve::parse_json(&body).unwrap_or_else(|e| panic!("{tag}: bad prof json {body:?}: {e}"))
    };
    let before = snapshot("before");
    assert_eq!(before.get("enabled").and_then(Json::as_bool), Some(true));
    let alloc_of = |doc: &Json, field: &str| -> f64 {
        doc.get("alloc")
            .and_then(|a| a.get(field))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("no alloc.{field} in {doc}"))
    };
    assert!(alloc_of(&before, "allocs") > 0.0, "the suite has allocated");
    assert!(alloc_of(&before, "peak_bytes") >= alloc_of(&before, "live_bytes"));
    for section in ["scopes", "locks", "pools"] {
        assert!(
            before.get(section).and_then(Json::as_arr).is_some(),
            "missing {section} in {before}"
        );
    }
    // The serving pools registered themselves.
    let pools = before.get("pools").and_then(Json::as_arr).unwrap();
    let pool_names: Vec<&str> = pools
        .iter()
        .filter_map(|p| p.get("pool").and_then(Json::as_str))
        .collect();
    assert!(pool_names.contains(&"http-worker"), "{pool_names:?}");

    // A scored request moves the cumulative counters forward, never back.
    let (status, head, body) = http_full(
        addr,
        "POST",
        "/v1/models/food/score",
        &rows_json(&unseen_batch(11)).to_string(),
    );
    assert_eq!(status, 200, "body: {body}");
    let after = snapshot("after");
    assert!(alloc_of(&after, "allocs") > alloc_of(&before, "allocs"));
    assert!(alloc_of(&after, "bytes") > alloc_of(&before, "bytes"));
    assert!(alloc_of(&after, "peak_bytes") >= alloc_of(&before, "peak_bytes"));

    // With profiling on, scoring books bytes under the "score" scope…
    let scope_bytes = |doc: &Json, name: &str| -> f64 {
        doc.get("scopes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .find(|s| s.get("scope").and_then(Json::as_str) == Some(name))
            .and_then(|s| s.get("bytes").and_then(Json::as_f64))
            .unwrap_or(0.0)
    };
    assert!(
        scope_bytes(&after, "score") > 0.0,
        "score scope missing from {after}"
    );

    // …and the request's trace carries per-stage alloc_bytes notes (the
    // tentpole contract: spans say where the time went, notes say where
    // the heap went, on the same stage names).
    let id = header_value(&head, "x-holo-trace").expect("trace id");
    let (status, trace_body) = http(addr, "GET", &format!("/v1/trace/{id}"), "");
    assert_eq!(status, 200, "body: {trace_body}");
    let doc = serve::parse_json(&trace_body).expect("trace json");
    let spans = doc.get("spans").and_then(Json::as_arr).expect("spans");
    for stage in ["validate", "score", "encode"] {
        let span = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(stage))
            .unwrap_or_else(|| panic!("no {stage:?} span in {trace_body}"));
        assert!(
            span.get("notes")
                .and_then(|n| n.get("alloc_bytes"))
                .and_then(Json::as_f64)
                .is_some(),
            "{stage} span has no alloc_bytes note in {trace_body}"
        );
    }

    // The same profile feeds /metrics as holo_prof_* families.
    let (_, page) = http(addr, "GET", "/metrics", "");
    for family in [
        "holo_prof_allocated_bytes_total",
        "holo_prof_alloc_bytes{scope=\"score\"}",
        "holo_prof_lock_wait_micros_bucket",
        "holo_prof_worker_busy_ratio{pool=\"http-worker\"}",
        "holo_features_nn_cache_hits_total",
    ] {
        assert!(page.contains(family), "missing {family} in /metrics page");
    }
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn shutdown_drains_and_refuses_new_connections() {
    let (_model, path) = fit_artifact("shutdown");
    let server = start_server(&path);
    let addr = server.addr();
    let (status, _) = post(
        addr,
        "/v1/models/food/score",
        &rows_json(&unseen_batch(2)).to_string(),
    );
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is gone: connecting fails or the socket yields EOF.
    let refused = match TcpStream::connect_timeout(&addr, Duration::from_millis(300)) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.set_read_timeout(Some(Duration::from_millis(300)));
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = String::new();
            s.read_to_string(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    };
    assert!(refused, "server still serving after shutdown");
    std::fs::remove_file(&path).ok();
}
