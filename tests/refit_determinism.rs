//! The parallel-refit acceptance bars, tested end to end at the
//! trained-model level (the sharded-SGD PR's criteria, alongside the
//! `stream_parity` suite):
//!
//! * **Thread invariance** — `refit_with` at any worker-thread count
//!   scores **bitwise-identical** to single-threaded at the same seed.
//!   The trainer's shard decomposition is fixed (independent of thread
//!   count) and the gradient reduction runs in slot order, so threads
//!   only change *who* computes each shard, never *what* is summed.
//! * **Refresh parity** — the incremental embedding refresh is
//!   deterministic, extends the vocabulary exactly like a full rebuild
//!   over the same delta, and never moves an existing token's id.

use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
use holodetect_repro::data::{CellId, Dataset, DatasetBuilder, GroundTruth, Schema};
use holodetect_repro::embed::{Embedding, SkipGramConfig};
use holodetect_repro::eval::FitContext;
use std::sync::OnceLock;

/// One fitted model, serialized once — every case reloads it through
/// the snapshot path, so all refits start from identical bytes.
fn snapshot() -> &'static [u8] {
    static SNAP: OnceLock<Vec<u8>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
        for _ in 0..30 {
            b.push_row(&["60612", "Chicago"]);
            b.push_row(&["53703", "Madison"]);
            b.push_row(&["61801", "Urbana"]);
        }
        let clean = b.build();
        let mut dirty = clean.clone();
        dirty.set_value(0, 1, "Cxhicago");
        dirty.set_value(7, 1, "Madxison");
        dirty.set_value(13, 1, "Urbxana");
        let truth = GroundTruth::from_pair(&clean, &dirty);
        let mut cfg = HoloDetectConfig::fast();
        cfg.epochs = 9;
        let train = truth.label_tuples(&dirty, &(0..24).collect::<Vec<_>>());
        let dcs = holodetect_repro::constraints::parse_constraints("Zip -> City", dirty.schema())
            .expect("constraints");
        let model = HoloDetect::new(cfg).fit_model(&FitContext {
            dirty: &dirty,
            train: &train,
            sampling: None,
            constraints: &dcs,
            seed: 5,
        });
        let mut buf = Vec::new();
        model.save_to(&mut buf).expect("snapshot");
        buf
    })
}

fn probe() -> Dataset {
    let mut b = DatasetBuilder::new(Schema::new(["Zip", "City"]));
    b.push_row(&["60612", "Chicago"]);
    b.push_row(&["60612", "Chicxago"]);
    b.push_row(&["99999", "Nowhere"]);
    b.build()
}

/// Refit the snapshot at the given thread count and return the
/// refitted model's probe scores as bit patterns.
fn refit_bits(threads: usize) -> Vec<u32> {
    let mut model =
        FittedHoloDetect::load_from(&mut std::io::Cursor::new(snapshot())).expect("load");
    model.set_threads(threads);
    let refitted = model.refit_with(Vec::new()).expect("refit");
    let d = probe();
    let cells: Vec<CellId> = d.cell_ids().collect();
    refitted
        .raw_scores(&d, &cells)
        .expect("score")
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

#[test]
fn n_thread_refit_is_bitwise_equal_to_single_thread() {
    let single = refit_bits(1);
    for threads in [2, 4, 8, 32] {
        assert_eq!(
            single,
            refit_bits(threads),
            "{threads}-thread refit diverged from single-threaded"
        );
    }
}

/// The delta corpus both refresh paths fold in.
fn delta() -> Vec<Vec<String>> {
    (0..15)
        .flat_map(|_| {
            [
                vec!["48201".to_string(), "Detroit".to_string()],
                vec!["48104".to_string(), "Ann Arbor".to_string()],
            ]
        })
        .collect()
}

#[test]
fn embedding_refresh_matches_rebuild_vocabulary_on_the_same_delta() {
    let base: Vec<Vec<String>> = (0..40)
        .flat_map(|_| {
            [
                vec!["60612".to_string(), "Chicago".to_string()],
                vec!["53703".to_string(), "Madison".to_string()],
            ]
        })
        .collect();
    let cfg = SkipGramConfig {
        dim: 16,
        epochs: 3,
        ..SkipGramConfig::default()
    };
    let fitted = Embedding::train(&base, &cfg);

    // Incremental path: fold the delta into the trained table.
    let mut refreshed = fitted.clone();
    assert!(refreshed.refresh(&delta(), &cfg, 2));

    // Full-rebuild path: retrain from scratch over base + delta.
    let mut extended = base.clone();
    extended.extend(delta());
    let rebuilt = Embedding::train(&extended, &cfg);

    // Parity bar 1: both paths cover the same vocabulary.
    let mut ref_tokens: Vec<&str> = refreshed
        .vocab()
        .tokens()
        .iter()
        .map(String::as_str)
        .collect();
    let mut reb_tokens: Vec<&str> = rebuilt
        .vocab()
        .tokens()
        .iter()
        .map(String::as_str)
        .collect();
    ref_tokens.sort_unstable();
    reb_tokens.sort_unstable();
    assert_eq!(
        ref_tokens, reb_tokens,
        "refresh must learn the delta vocabulary"
    );

    // Parity bar 2: refresh never moves an existing token's id (the
    // invariant that keeps featurizer tables valid), and is itself
    // deterministic: a second refresh from the same fit is bitwise
    // identical.
    for tok in ["Chicago", "Madison", "60612", "53703"] {
        assert_eq!(fitted.vocab().id(tok), refreshed.vocab().id(tok));
    }
    let mut again = fitted.clone();
    assert!(again.refresh(&delta(), &cfg, 2));
    for tok in ["Detroit", "Chicago", "48201"] {
        let a = refreshed.vector(tok);
        let b = again.vector(tok);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "refresh must be deterministic for {tok:?}"
        );
    }
}
