//! Integration tests across the data/constraints/datagen substrates:
//! CSV round-trips of generated datasets, violation accounting against
//! ground truth, and FD discovery on clean vs dirty copies.

use holodetect_repro::constraints::discovery::fd_satisfaction;
use holodetect_repro::constraints::ViolationEngine;
use holodetect_repro::data::csv::{parse_csv, write_csv};
use holodetect_repro::datagen::{generate, DatasetKind};

#[test]
fn generated_datasets_roundtrip_through_csv() {
    for kind in DatasetKind::ALL {
        let g = generate(kind, 120, 5);
        let text = write_csv(&g.dirty);
        let back = parse_csv(&text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back.n_tuples(), g.dirty.n_tuples(), "{kind}");
        assert_eq!(back.n_attrs(), g.dirty.n_attrs(), "{kind}");
        for t in (0..back.n_tuples()).step_by(17) {
            assert_eq!(
                back.tuple_values(t),
                g.dirty.tuple_values(t),
                "{kind} row {t}"
            );
        }
    }
}

#[test]
fn clean_copies_satisfy_all_constraints_dirty_do_not() {
    let mut any_dirty_violation = false;
    for kind in DatasetKind::ALL {
        let g = generate(kind, 600, 23);
        let clean_engine = ViolationEngine::build(&g.clean, &g.constraints);
        for ix in clean_engine.indexes() {
            assert_eq!(
                ix.n_violating_tuples(),
                0,
                "{kind}: clean data violates {}",
                ix.constraint().name
            );
        }
        let dirty_engine = ViolationEngine::build(&g.dirty, &g.constraints);
        if dirty_engine
            .indexes()
            .iter()
            .any(|ix| ix.n_violating_tuples() > 0)
        {
            any_dirty_violation = true;
        }
    }
    assert!(
        any_dirty_violation,
        "no dataset produced violations from injected errors"
    );
}

#[test]
fn fd_satisfaction_degrades_from_clean_to_dirty() {
    let g = generate(DatasetKind::Hospital, 800, 3);
    let zip = g.clean.schema().expect_attr("ZipCode");
    let city = g.clean.schema().expect_attr("City");
    let clean_alpha = fd_satisfaction(&g.clean, &[zip], city);
    let dirty_alpha = fd_satisfaction(&g.dirty, &[zip], city);
    assert_eq!(clean_alpha, 1.0);
    assert!(dirty_alpha < 1.0, "errors should break the Zip→City FD");
    assert!(
        dirty_alpha > 0.5,
        "errors are sparse; alpha should stay high"
    );
}

#[test]
fn violation_overrides_agree_with_truth_repairs() {
    // The hypothetical-value query must agree with rebuilding the engine
    // on a copy of the dataset where that one cell is actually repaired
    // (note: a repair can legitimately *increase* violations when other
    // tuples in the restored FD group are themselves dirty).
    let g = generate(DatasetKind::Hospital, 400, 9);
    let engine = ViolationEngine::build(&g.dirty, &g.constraints);
    let mut checked = 0;
    for (cell, truth_value) in g.truth.error_cells() {
        let mut repaired = g.dirty.clone();
        repaired.set_value(cell.t(), cell.a(), truth_value);
        let rebuilt = ViolationEngine::build(&repaired, &g.constraints);
        for (ix, rix) in engine.indexes().iter().zip(rebuilt.indexes()) {
            let hypothetical =
                ix.tuple_violations_with_override(&g.dirty, cell.t(), cell.a(), truth_value);
            assert_eq!(
                hypothetical,
                rix.tuple_violations(cell.t()),
                "override query disagrees with rebuild for {cell} on {}",
                ix.constraint().name
            );
        }
        checked += 1;
        if checked >= 15 {
            break;
        }
    }
    assert!(checked > 5);
}

#[test]
fn ground_truth_error_counts_are_consistent() {
    for kind in DatasetKind::ALL {
        let g = generate(kind, 300, 41);
        let recount = g
            .dirty
            .cell_ids()
            .filter(|&c| g.truth.label(c).is_error())
            .count();
        assert_eq!(recount, g.truth.n_errors(), "{kind}");
        for (cell, truth_value) in g.truth.error_cells() {
            assert_ne!(g.dirty.cell_value(cell), truth_value, "{kind}: {cell}");
            assert_eq!(g.clean.cell_value(cell), truth_value, "{kind}: {cell}");
        }
    }
}
