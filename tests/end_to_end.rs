//! Cross-crate integration tests: the full HoloDetect pipeline driven
//! through the public fit/score/predict API, across generated datasets
//! and baselines.

use holodetect_repro::baselines::{
    ConstraintViolations, ForbiddenItemsets, HoloCleanDetector, LogisticRegression, OutlierDetector,
};
use holodetect_repro::core::{HoloDetect, HoloDetectConfig, Strategy};
use holodetect_repro::data::Label;
use holodetect_repro::datagen::{generate, DatasetKind};
use holodetect_repro::eval::{
    Confusion, DetectionContext, Detector, FitContext, Split, SplitConfig,
};

fn run_detector(det: &dyn Detector, kind: DatasetKind, rows: usize, train_frac: f64) -> Confusion {
    let g = generate(kind, rows, 77);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac,
            sampling_frac: 0.1,
            seed: 5,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let sampling = split.sampling_set(&g.dirty, &g.truth);
    let eval_cells = split.test_cells(&g.dirty);
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: Some(&sampling),
        constraints: &g.constraints,
        seed: 9,
    };
    let model = det.fit(&ctx);
    let scores = model.score_batch(&g.dirty, &eval_cells).unwrap();
    assert_eq!(scores.len(), eval_cells.len());
    assert!(
        scores.iter().all(|p| (0.0..=1.0).contains(p)),
        "{}: scores out of [0,1]",
        det.name()
    );
    let labels = model
        .predict_batch(&g.dirty, &eval_cells, model.default_threshold())
        .unwrap();
    assert_eq!(labels.len(), eval_cells.len());
    let mut c = Confusion::default();
    for (cell, pred) in eval_cells.iter().zip(&labels) {
        c.record(*pred, g.truth.label(*cell));
    }
    c
}

#[test]
fn aug_beats_trivial_baselines_on_hospital() {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 30;
    let aug = HoloDetect::new(cfg);
    let c = run_detector(&aug, DatasetKind::Hospital, 300, 0.10);
    // Must decisively beat the all-error baseline's precision (~2.6%)
    // and the all-correct baseline's recall (0).
    assert!(c.precision() > 0.3, "precision {:.3}", c.precision());
    assert!(c.recall() > 0.3, "recall {:.3}", c.recall());
    assert!(c.f1() > 0.4, "f1 {:.3}", c.f1());
}

#[test]
fn every_baseline_runs_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(ConstraintViolations),
            Box::new(HoloCleanDetector::default()),
            Box::new(OutlierDetector::default()),
            Box::new(ForbiddenItemsets::default()),
            Box::new(LogisticRegression::default()),
        ];
        for det in &detectors {
            let c = run_detector(det.as_ref(), kind, 150, 0.10);
            assert!(
                c.total() > 0,
                "{kind}: {} produced no predictions",
                det.name()
            );
        }
    }
}

#[test]
fn cv_recall_tracks_constraint_coverage_on_hospital() {
    // Hospital errors are x-typos; typos on FD attributes violate
    // constraints, so CV should catch a non-trivial share but show low
    // precision (it flags whole violating groups) — the paper's Table 2
    // shape.
    let c = run_detector(&ConstraintViolations, DatasetKind::Hospital, 500, 0.10);
    assert!(c.recall() > 0.15, "recall {:.3}", c.recall());
    assert!(c.precision() < 0.5, "precision {:.3}", c.precision());
}

#[test]
fn hc_has_higher_precision_than_cv() {
    let c_cv = run_detector(&ConstraintViolations, DatasetKind::Hospital, 400, 0.10);
    let c_hc = run_detector(
        &HoloCleanDetector::default(),
        DatasetKind::Hospital,
        400,
        0.10,
    );
    assert!(
        c_hc.precision() >= c_cv.precision(),
        "HC {:.3} vs CV {:.3}",
        c_hc.precision(),
        c_cv.precision()
    );
}

#[test]
fn augmentation_outperforms_supervision_with_scarce_errors() {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 25;
    let aug = HoloDetect::new(cfg.clone());
    let sup = HoloDetect::with_strategy(cfg, Strategy::Supervised);
    let c_aug = run_detector(&aug, DatasetKind::Hospital, 300, 0.05);
    let c_sup = run_detector(&sup, DatasetKind::Hospital, 300, 0.05);
    assert!(
        c_aug.recall() >= c_sup.recall(),
        "AUG recall {:.3} vs SuperL {:.3}",
        c_aug.recall(),
        c_sup.recall()
    );
}

#[test]
fn detections_are_deterministic_across_identical_runs() {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 10;
    let g = generate(DatasetKind::Soccer, 200, 31);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.1,
            sampling_frac: 0.0,
            seed: 2,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let eval_cells = split.test_cells(&g.dirty);
    let run = || {
        let ctx = DetectionContext {
            dirty: &g.dirty,
            train: &train,
            sampling: None,
            constraints: &g.constraints,
            eval_cells: &eval_cells,
            seed: 4,
        };
        HoloDetect::new(cfg.clone()).detect(&ctx)
    };
    assert_eq!(run(), run());
}

#[test]
fn label_arity_matches_eval_cells_even_when_empty() {
    let g = generate(DatasetKind::Animal, 120, 3);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.1,
            sampling_frac: 0.0,
            seed: 8,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 0,
    };
    let det = HoloDetect::new(HoloDetectConfig::fast());
    let model = det.fit(&ctx);
    assert!(model.score_batch(&g.dirty, &[]).unwrap().is_empty());
    assert!(model
        .predict_batch(&g.dirty, &[], model.default_threshold())
        .unwrap()
        .is_empty());
}

#[test]
fn predictions_use_both_labels() {
    let mut cfg = HoloDetectConfig::fast();
    cfg.epochs = 25;
    let det = HoloDetect::new(cfg);
    let g = generate(DatasetKind::Hospital, 250, 13);
    let split = Split::new(
        &g.dirty,
        SplitConfig {
            train_frac: 0.1,
            sampling_frac: 0.0,
            seed: 6,
        },
    );
    let train = split.training_set(&g.dirty, &g.truth);
    let eval_cells = split.test_cells(&g.dirty);
    let ctx = FitContext {
        dirty: &g.dirty,
        train: &train,
        sampling: None,
        constraints: &g.constraints,
        seed: 1,
    };
    let model = det.fit(&ctx);
    let labels = model
        .predict_batch(&g.dirty, &eval_cells, model.default_threshold())
        .unwrap();
    assert!(labels.contains(&Label::Error), "never flags anything");
    assert!(labels.contains(&Label::Correct), "flags everything");
}
