//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the subset of the rand 0.9 API the workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng::random_range`] sampler over integer and float ranges, and
//! [`seq::SliceRandom`] for shuffles. The generator is SplitMix64 —
//! deterministic, fast, and statistically solid for simulation and
//! initialization workloads (it is **not** cryptographic, which the
//! real `StdRng` is; nothing here needs that).

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive, integer or
    /// float).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distr {
    use super::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A range that can produce one uniform sample.
    pub trait SampleRange<T> {
        /// Draw a single uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty, $bits:expr);* $(;)?) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // Mantissa-many high bits -> uniform in [0, 1), exact
                    // in the target type so the unit never rounds to 1.
                    let unit =
                        (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                    let out = self.start + unit * (self.end - self.start);
                    // Scaling can still round up to the exclusive bound;
                    // keep the half-open contract.
                    if out < self.end {
                        out
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
        )*};
    }

    impl_float_range!(f32, 24; f64, 53);
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers: in-place Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i: usize = rng.random_range(3..17);
            assert!((3..17).contains(&i));
            let u: u8 = rng.random_range(b'a'..=b'z');
            assert!(u.is_ascii_lowercase());
            let f: f32 = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let n: i32 = rng.random_range(-10..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000)
            .map(|_| rng.random_range(0.0..1.0f64))
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn nested_borrow_is_an_rng_too() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            rng.next_u64()
        }
        fn forwards(rng: &mut impl Rng) -> u64 {
            takes_rng(rng)
        }
        let mut rng = StdRng::seed_from_u64(6);
        forwards(&mut rng);
    }
}
