//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the slice of criterion's API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros (both the
//! plain and the `name/config/targets` forms). Each benchmark runs a
//! warm-up pass, then `sample_size` timed samples, and prints
//! min / median / max time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: collects samples and prints a summary line.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock per sample; iterations auto-scale to reach it.
    sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark: warm up, time `sample_size` samples, report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up + calibration sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
        let iters_per_sample = (self.sample_time.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u32::MAX as u128) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters_per_sample as u32);
        }
        samples.sort_unstable();
        let min = samples[0];
        let med = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}] ({} samples x {iters_per_sample} iters)",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max),
            samples.len(),
        );
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it as many times as the driver asks.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions, mirroring criterion's two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running every group (used with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn runs_a_group() {
        let mut c = Criterion::default().sample_size(3);
        quick(&mut c);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
