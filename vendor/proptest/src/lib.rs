//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the slice of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! the [`strategy::Strategy`] trait with `prop_map`, range and
//! char-class-regex strategies, tuple strategies, and
//! [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministic pseudo-random cases (seeded from the test
//! name) and reports the first failing case's values via the assertion
//! message.

pub mod test_runner {
    /// Cases per property (real proptest defaults to 256; kept lower to
    /// bound `cargo test` wall-clock).
    pub const CASES: usize = 64;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — skip, don't fail.
        Reject,
        /// `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// SplitMix64 — the deterministic case generator.
    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        /// Seeded generator.
        pub fn new(seed: u64) -> Self {
            StubRng { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::StubRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StubRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StubRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty strategy range");
                    let span = (e as i128 - s as i128 + 1) as u64;
                    (s as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    /// String strategies from the char-class-regex subset proptest
    /// supports and this workspace uses: `.{m,n}`, `[a-z0-9 ]{m,n}`,
    /// `[ -~]{m,n}`, with `{n}` as a fixed count.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StubRng) -> String {
            let (classes, min, max) = parse_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| classes[rng.below(classes.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `<class>{m,n}` → (allowed chars, m, n).
    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let chars: Vec<char> = pat.chars().collect();
        let (class, rest) = match chars.first() {
            Some('.') => ((' '..='~').collect::<Vec<char>>(), &chars[1..]),
            Some('[') => {
                let close = chars
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed char class in {pat:?}"));
                let body = &chars[1..close];
                let mut set = Vec::new();
                let mut i = 0;
                while i < body.len() {
                    if i + 2 < body.len() && body[i + 1] == '-' {
                        let (lo, hi) = (body[i], body[i + 2]);
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(body[i]);
                        i += 1;
                    }
                }
                (set, &chars[close + 1..])
            }
            _ => panic!("unsupported pattern {pat:?} (stub supports <class>{{m,n}})"),
        };
        let rest: String = rest.iter().collect();
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pat:?}"));
        let (min, max) = match counts.split_once(',') {
            Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
            None => {
                let n = counts.parse().unwrap();
                (n, n)
            }
        };
        assert!(!class.is_empty() && min <= max, "bad pattern {pat:?}");
        (class, min, max)
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),* $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StubRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;

    /// A `Vec` strategy with element strategy `element` and a size given
    /// as an exact count, a half-open range, or an inclusive range.
    pub fn vec<S: Strategy, R: Into<SizeRange>>(element: S, size: R) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Element-count bounds for [`vec()`].
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`test_runner::CASES`] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_runner::StubRng::new(
                    0x5D5A_1000u64 ^ stringify!($name).bytes().fold(0u64, |h, b| {
                        h.wrapping_mul(131).wrapping_add(b as u64)
                    }),
                );
                for case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let dbg = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) | Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case} [{dbg}]: {msg}")
                        }
                    }
                }
            }
        )+
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} == {} (left: {:?}, right: {:?})",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if l == r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} != {} (both: {:?})",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    proptest! {
        /// The stub exercises ranges, regex classes, vecs, and tuples.
        #[test]
        fn stub_machinery_works(
            n in 1usize..10,
            s in "[a-c]{0,8}",
            pair in (0u8..3, 0u8..3),
            v in crate::collection::vec("[x-z]{1,2}", 2..5),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(s.len() <= 8 && s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(pair.0 < 3 && pair.1 < 3);
            prop_assert!((2..5).contains(&v.len()));
            for e in &v {
                prop_assert!(!e.is_empty() && e.len() <= 2);
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_rejects(a in 0usize..4, b in 0usize..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn pattern_space_to_tilde_is_printable_ascii() {
        use crate::strategy::Strategy;
        use crate::test_runner::StubRng;
        let mut rng = StubRng::new(1);
        for _ in 0..50 {
            let s = "[ -~]{0,8}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn run_the_proptests() {
        stub_machinery_works();
        assume_rejects();
    }
}
