//! Workspace umbrella crate: re-exports the public API of every
//! HoloDetect reproduction crate so examples and integration tests can
//! use a single dependency.
//!
//! # The fit → save → load → score lifecycle
//!
//! The detector API is staged the way a deployment is: train the noisy
//! channel + augmentation + wide-and-deep model **once** on a reference
//! sample, persist the resulting artifact, and score any number of cell
//! batches — of the fit dataset or of schema-compatible datasets loaded
//! long after — through the resulting [`eval::TrainedModel`]:
//!
//! ```no_run
//! use holodetect_repro::core::{FittedHoloDetect, HoloDetect, HoloDetectConfig};
//! use holodetect_repro::eval::{Detector, FitContext, TrainedModel};
//! use std::path::Path;
//! # fn ctx() -> FitContext<'static> { unimplemented!() }
//! # fn batch() -> holodetect_repro::data::Dataset { unimplemented!() }
//! # fn cells() -> Vec<holodetect_repro::data::CellId> { unimplemented!() }
//!
//! let detector = HoloDetect::new(HoloDetectConfig::default());
//! let model = detector.fit_model(&ctx());      // learn once (expensive)
//! model.save(Path::new("detector.holoart"))?;  // deploy the file
//!
//! // …in a later process:
//! let served = FittedHoloDetect::load(Path::new("detector.holoart"))?;
//! let incoming = batch();                      // unseen data, same schema
//! let probs = served.score_batch(&incoming, &cells())?;
//! let labels = served.predict_batch(&incoming, &cells(), served.default_threshold())?;
//! # Ok::<(), holodetect_repro::eval::ModelError>(())
//! ```
//!
//! Models are owned and `'static` (no borrow of the fit context
//! survives), `Send + Sync` (batches can be scored concurrently from
//! many threads — the hook sharding/batching/serving layers build on),
//! and defensive (schema mismatches and out-of-range cells are typed
//! [`eval::ModelError`]s, never garbage scores). A reloaded artifact
//! scores bit-identically to the in-process model. The one-call
//! [`eval::Detector::detect`] shim remains for harness one-liners.
//!
//! # Crates
//!
//! * [`data`] — datasets, cells, labels, ground truth,
//! * [`text`] — tokenization, n-grams, edit distance,
//! * [`constraints`] — denial constraints and violation detection,
//! * [`embed`] — skip-gram embeddings,
//! * [`channel`] — the noisy channel: transformation learning,
//!   policies, augmentation (Algorithms 1–4), weak supervision,
//! * [`features`] — the multi-granularity representation `Q`,
//! * [`nn`] — the neural substrate: layers, ADAM, Platt scaling,
//! * [`core`] — the HoloDetect pipeline and its training strategies,
//! * [`baselines`] — the competing methods of Table 2,
//! * [`eval`] — the detector API, splits, metrics, multi-seed runs,
//! * [`datagen`] — simulated stand-ins for the paper's five datasets,
//! * [`serve`] — the std-only serving subsystem: HTTP scoring server,
//!   model registry with hot reload, micro-batching, metrics,
//! * [`stream`] — streaming ingest: durable delta logs, incremental
//!   model maintenance (bitwise-equal to a rebuild at the same epoch),
//!   drift monitoring, and background drift-triggered refit,
//! * [`scenarios`] — the multi-dataset scenario suite: paper-style
//!   schemas driven through fit → serve → stream → drift → refit with
//!   PR-AUC/F1 tracked per schema and gated in CI against
//!   `BENCH_scenarios.json`,
//! * [`adapt`] — few-shot drift adaptation: PSI/KS score-distribution
//!   drift detection, labeled probe pools, and the label → channel →
//!   augment → refit pipeline that recovers quality on quiet drift,
//! * [`trace`] — request-scoped span tracing: monotonic span trees, a
//!   bounded ring-buffer recorder with slow-request exemplars, and
//!   refit timelines, surfaced as `/v1/trace/*` endpoints and
//!   per-stage `/metrics` histograms by [`serve`].

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub use holo_adapt as adapt;
pub use holo_baselines as baselines;
pub use holo_channel as channel;
pub use holo_constraints as constraints;
pub use holo_data as data;
pub use holo_datagen as datagen;
pub use holo_embed as embed;
pub use holo_eval as eval;
pub use holo_features as features;
pub use holo_nn as nn;
pub use holo_scenarios as scenarios;
pub use holo_serve as serve;
pub use holo_stream as stream;
pub use holo_text as text;
pub use holo_trace as trace;
pub use holodetect as core;
