//! Workspace umbrella crate: re-exports the public API of every
//! HoloDetect reproduction crate so examples and integration tests can
//! use a single dependency.
//!
//! # The fit / score / predict lifecycle
//!
//! The detector API is staged the way the method itself is: train the
//! noisy channel + augmentation + wide-and-deep model **once**, then
//! classify any number of cell batches through the resulting
//! [`eval::TrainedModel`]:
//!
//! ```no_run
//! use holodetect_repro::core::{HoloDetect, HoloDetectConfig};
//! use holodetect_repro::eval::{Detector, FitContext};
//! # fn ctx() -> FitContext<'static> { unimplemented!() }
//! # fn cells() -> Vec<holodetect_repro::data::CellId> { unimplemented!() }
//!
//! let detector = HoloDetect::new(HoloDetectConfig::default());
//! let model = detector.fit(&ctx());      // learn once (expensive)
//! let probs = model.score(&cells());     // calibrated P(error), reusable
//! let labels = model.predict(&cells(), model.default_threshold());
//! ```
//!
//! `model` is `Send + Sync`: batches can be scored concurrently from
//! many threads, which is the hook sharding/batching/serving layers
//! build on. The one-call [`eval::Detector::detect`] shim remains for
//! harness one-liners.
//!
//! # Crates
//!
//! * [`data`] — datasets, cells, labels, ground truth,
//! * [`text`] — tokenization, n-grams, edit distance,
//! * [`constraints`] — denial constraints and violation detection,
//! * [`embed`] — skip-gram embeddings,
//! * [`channel`] — the noisy channel: transformation learning,
//!   policies, augmentation (Algorithms 1–4), weak supervision,
//! * [`features`] — the multi-granularity representation `Q`,
//! * [`nn`] — the neural substrate: layers, ADAM, Platt scaling,
//! * [`core`] — the HoloDetect pipeline and its training strategies,
//! * [`baselines`] — the competing methods of Table 2,
//! * [`eval`] — the detector API, splits, metrics, multi-seed runs,
//! * [`datagen`] — simulated stand-ins for the paper's five datasets.

pub use holo_baselines as baselines;
pub use holo_channel as channel;
pub use holo_constraints as constraints;
pub use holo_data as data;
pub use holo_datagen as datagen;
pub use holo_embed as embed;
pub use holo_eval as eval;
pub use holo_features as features;
pub use holo_nn as nn;
pub use holo_text as text;
pub use holodetect as core;
