//! Workspace umbrella crate: re-exports the public API of every
//! HoloDetect reproduction crate so examples and integration tests can
//! use a single dependency.

pub use holo_baselines as baselines;
pub use holo_channel as channel;
pub use holo_constraints as constraints;
pub use holo_data as data;
pub use holo_datagen as datagen;
pub use holo_embed as embed;
pub use holo_eval as eval;
pub use holo_features as features;
pub use holo_nn as nn;
pub use holo_text as text;
pub use holodetect as core;
